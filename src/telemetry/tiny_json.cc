#include "telemetry/tiny_json.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace ndpext {
namespace json {

const Value*
Value::get(const std::string& key) const
{
    if (type != Type::Object) {
        return nullptr;
    }
    for (const auto& [k, v] : object) {
        if (k == key) {
            return v.get();
        }
    }
    return nullptr;
}

const Value*
Value::require(const std::string& key, std::string* err) const
{
    const Value* v = get(key);
    if (v == nullptr && err != nullptr && err->empty()) {
        *err = "missing key '" + key + "'";
    }
    return v;
}

double
Value::num(const std::string& key, double fallback) const
{
    const Value* v = get(key);
    return v != nullptr && v->isNumber() ? v->number : fallback;
}

std::string
Value::str(const std::string& key, const std::string& fallback) const
{
    const Value* v = get(key);
    return v != nullptr && v->isString() ? v->string : fallback;
}

namespace {

class Parser
{
  public:
    Parser(const std::string& text, std::string* error)
        : text_(text), error_(error)
    {
    }

    ValuePtr
    run()
    {
        ValuePtr v = parseValue();
        if (v == nullptr) {
            return nullptr;
        }
        skipWs();
        if (pos_ != text_.size()) {
            fail("trailing garbage");
            return nullptr;
        }
        return v;
    }

  private:
    void
    fail(const std::string& what)
    {
        if (error_ != nullptr && error_->empty()) {
            std::ostringstream oss;
            oss << what << " at offset " << pos_;
            *error_ = oss.str();
        }
    }

    void
    skipWs()
    {
        while (pos_ < text_.size()
               && (text_[pos_] == ' ' || text_[pos_] == '\t'
                   || text_[pos_] == '\n' || text_[pos_] == '\r')) {
            ++pos_;
        }
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(const char* word)
    {
        const std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) == 0) {
            pos_ += n;
            return true;
        }
        return false;
    }

    ValuePtr
    parseValue()
    {
        skipWs();
        if (pos_ >= text_.size()) {
            fail("unexpected end of input");
            return nullptr;
        }
        const char c = text_[pos_];
        switch (c) {
          case '{':
            return parseObject();
          case '[':
            return parseArray();
          case '"':
            return parseString();
          case 't':
          case 'f':
          case 'n':
            return parseKeyword();
          default:
            return parseNumber();
        }
    }

    ValuePtr
    parseKeyword()
    {
        auto v = std::make_shared<Value>();
        if (literal("true")) {
            v->type = Type::Bool;
            v->boolean = true;
        } else if (literal("false")) {
            v->type = Type::Bool;
            v->boolean = false;
        } else if (literal("null")) {
            v->type = Type::Null;
        } else {
            fail("bad keyword");
            return nullptr;
        }
        return v;
    }

    ValuePtr
    parseNumber()
    {
        const char* start = text_.c_str() + pos_;
        char* end = nullptr;
        const double d = std::strtod(start, &end);
        if (end == start) {
            fail("bad number");
            return nullptr;
        }
        pos_ += static_cast<std::size_t>(end - start);
        auto v = std::make_shared<Value>();
        v->type = Type::Number;
        v->number = d;
        return v;
    }

    bool
    parseStringInto(std::string& out)
    {
        if (!consume('"')) {
            fail("expected string");
            return false;
        }
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"') {
                return true;
            }
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size()) {
                break;
            }
            const char esc = text_[pos_++];
            switch (esc) {
              case '"':
                out += '"';
                break;
              case '\\':
                out += '\\';
                break;
              case '/':
                out += '/';
                break;
              case 'b':
                out += '\b';
                break;
              case 'f':
                out += '\f';
                break;
              case 'n':
                out += '\n';
                break;
              case 'r':
                out += '\r';
                break;
              case 't':
                out += '\t';
                break;
              case 'u': {
                if (pos_ + 4 > text_.size()) {
                    fail("bad \\u escape");
                    return false;
                }
                const std::string hex = text_.substr(pos_, 4);
                pos_ += 4;
                const long cp = std::strtol(hex.c_str(), nullptr, 16);
                // Telemetry strings are ASCII; replace exotic code
                // points instead of implementing full UTF-16 pairs.
                out += cp < 0x80 ? static_cast<char>(cp) : '?';
                break;
              }
              default:
                fail("bad escape");
                return false;
            }
        }
        fail("unterminated string");
        return false;
    }

    ValuePtr
    parseString()
    {
        auto v = std::make_shared<Value>();
        v->type = Type::String;
        if (!parseStringInto(v->string)) {
            return nullptr;
        }
        return v;
    }

    ValuePtr
    parseArray()
    {
        consume('[');
        auto v = std::make_shared<Value>();
        v->type = Type::Array;
        skipWs();
        if (consume(']')) {
            return v;
        }
        for (;;) {
            ValuePtr item = parseValue();
            if (item == nullptr) {
                return nullptr;
            }
            v->array.push_back(std::move(item));
            if (consume(',')) {
                continue;
            }
            if (consume(']')) {
                return v;
            }
            fail("expected ',' or ']'");
            return nullptr;
        }
    }

    ValuePtr
    parseObject()
    {
        consume('{');
        auto v = std::make_shared<Value>();
        v->type = Type::Object;
        skipWs();
        if (consume('}')) {
            return v;
        }
        for (;;) {
            skipWs();
            std::string key;
            if (!parseStringInto(key)) {
                return nullptr;
            }
            if (!consume(':')) {
                fail("expected ':'");
                return nullptr;
            }
            ValuePtr item = parseValue();
            if (item == nullptr) {
                return nullptr;
            }
            v->object.emplace_back(std::move(key), std::move(item));
            if (consume(',')) {
                continue;
            }
            if (consume('}')) {
                return v;
            }
            fail("expected ',' or '}'");
            return nullptr;
        }
    }

    const std::string& text_;
    std::string* error_;
    std::size_t pos_ = 0;
};

} // namespace

ValuePtr
parse(const std::string& text, std::string* error)
{
    return Parser(text, error).run();
}

bool
parseLines(const std::string& text, std::vector<ValuePtr>& out,
           std::string* error)
{
    std::istringstream in(text);
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.find_first_not_of(" \t\r") == std::string::npos) {
            continue;
        }
        std::string err;
        ValuePtr v = parse(line, &err);
        if (v == nullptr) {
            if (error != nullptr) {
                *error = "line " + std::to_string(lineno) + ": " + err;
            }
            return false;
        }
        out.push_back(std::move(v));
    }
    return true;
}

} // namespace json
} // namespace ndpext
