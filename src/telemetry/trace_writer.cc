#include "telemetry/trace_writer.h"

#include "telemetry/json_out.h"

namespace ndpext {

void
TraceWriter::completeSpan(const std::string& cat, const std::string& name,
                          std::uint32_t pid, std::uint32_t tid, Cycles ts,
                          Cycles dur, const std::string& args_json)
{
    events_.push_back({'X', cat, name, pid, tid, ts, dur, args_json});
}

void
TraceWriter::instant(const std::string& cat, const std::string& name,
                     std::uint32_t pid, std::uint32_t tid, Cycles ts,
                     const std::string& args_json)
{
    events_.push_back({'i', cat, name, pid, tid, ts, 0, args_json});
}

void
TraceWriter::counter(const std::string& name, std::uint32_t pid, Cycles ts,
                     const std::string& args_json)
{
    events_.push_back({'C', "metric", name, pid, 0, ts, 0, args_json});
}

void
TraceWriter::processName(std::uint32_t pid, const std::string& name)
{
    events_.push_back({'M', "__metadata", "process_name", pid, 0, 0, 0,
                       "{\"name\":" + jsonout::str(name) + "}"});
}

void
TraceWriter::threadName(std::uint32_t pid, std::uint32_t tid,
                        const std::string& name)
{
    events_.push_back({'M', "__metadata", "thread_name", pid, tid, 0, 0,
                       "{\"name\":" + jsonout::str(name) + "}"});
}

void
TraceWriter::write(std::ostream& os) const
{
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    for (std::size_t i = 0; i < events_.size(); ++i) {
        const Event& e = events_[i];
        os << "{\"ph\":\"" << e.ph << "\",\"cat\":" << jsonout::str(e.cat)
           << ",\"name\":" << jsonout::str(e.name) << ",\"pid\":" << e.pid
           << ",\"tid\":" << e.tid << ",\"ts\":" << e.ts;
        if (e.ph == 'X') {
            os << ",\"dur\":" << e.dur;
        }
        if (e.ph == 'i') {
            os << ",\"s\":\"g\"";
        }
        if (!e.argsJson.empty()) {
            os << ",\"args\":" << e.argsJson;
        }
        os << "}";
        if (i + 1 != events_.size()) {
            os << ",";
        }
        os << "\n";
    }
    os << "]}\n";
}

void
TraceWriter::serialize(ckpt::Writer& w) const
{
    w.u64(events_.size());
    for (const Event& e : events_) {
        w.u8(static_cast<std::uint8_t>(e.ph));
        w.str(e.cat);
        w.str(e.name);
        w.u32(e.pid);
        w.u32(e.tid);
        w.u64(e.ts);
        w.u64(e.dur);
        w.str(e.argsJson);
    }
}

void
TraceWriter::deserialize(ckpt::Reader& r)
{
    events_.clear();
    const std::uint64_t n = r.u64();
    events_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        Event e;
        e.ph = static_cast<char>(r.u8());
        e.cat = r.str();
        e.name = r.str();
        e.pid = r.u32();
        e.tid = r.u32();
        e.ts = r.u64();
        e.dur = r.u64();
        e.argsJson = r.str();
        events_.push_back(std::move(e));
    }
}

} // namespace ndpext
