#include "telemetry/trace_writer.h"

#include "common/logging.h"
#include "telemetry/json_out.h"

namespace ndpext {

void
TraceWriter::completeSpan(const std::string& cat, const std::string& name,
                          std::uint32_t pid, std::uint32_t tid, Cycles ts,
                          Cycles dur, const std::string& args_json)
{
    events_.push_back({'X', cat, name, pid, tid, ts, dur, 0, args_json});
}

void
TraceWriter::instant(const std::string& cat, const std::string& name,
                     std::uint32_t pid, std::uint32_t tid, Cycles ts,
                     const std::string& args_json)
{
    events_.push_back({'i', cat, name, pid, tid, ts, 0, 0, args_json});
}

void
TraceWriter::counter(const std::string& name, std::uint32_t pid, Cycles ts,
                     const std::string& args_json)
{
    events_.push_back({'C', "metric", name, pid, 0, ts, 0, 0, args_json});
}

void
TraceWriter::flowStart(const std::string& cat, const std::string& name,
                       std::uint32_t pid, std::uint32_t tid, Cycles ts,
                       std::uint64_t id)
{
    events_.push_back({'s', cat, name, pid, tid, ts, 0, id, ""});
}

void
TraceWriter::flowStep(const std::string& cat, const std::string& name,
                      std::uint32_t pid, std::uint32_t tid, Cycles ts,
                      std::uint64_t id)
{
    events_.push_back({'t', cat, name, pid, tid, ts, 0, id, ""});
}

void
TraceWriter::flowEnd(const std::string& cat, const std::string& name,
                     std::uint32_t pid, std::uint32_t tid, Cycles ts,
                     std::uint64_t id)
{
    events_.push_back({'f', cat, name, pid, tid, ts, 0, id, ""});
}

void
TraceWriter::processName(std::uint32_t pid, const std::string& name)
{
    events_.push_back({'M', "__metadata", "process_name", pid, 0, 0, 0, 0,
                       "{\"name\":" + jsonout::str(name) + "}"});
}

void
TraceWriter::threadName(std::uint32_t pid, std::uint32_t tid,
                        const std::string& name)
{
    events_.push_back({'M', "__metadata", "thread_name", pid, tid, 0, 0, 0,
                       "{\"name\":" + jsonout::str(name) + "}"});
}

void
TraceWriter::renderEvent(std::ostream& os, const Event& e)
{
    os << "{\"ph\":\"" << e.ph << "\",\"cat\":" << jsonout::str(e.cat)
       << ",\"name\":" << jsonout::str(e.name) << ",\"pid\":" << e.pid
       << ",\"tid\":" << e.tid << ",\"ts\":" << e.ts;
    if (e.ph == 'X') {
        os << ",\"dur\":" << e.dur;
    }
    if (e.ph == 'i') {
        os << ",\"s\":\"g\"";
    }
    if (e.ph == 's' || e.ph == 't' || e.ph == 'f') {
        os << ",\"id\":" << e.id;
        if (e.ph == 'f') {
            os << ",\"bp\":\"e\"";
        }
    }
    if (!e.argsJson.empty()) {
        os << ",\"args\":" << e.argsJson;
    }
    os << "}";
}

void
TraceWriter::write(std::ostream& os) const
{
    NDP_ASSERT(flushed_ == 0);
    writeStitched(os, {});
}

void
TraceWriter::writeStitched(std::ostream& os,
                           const std::vector<std::string>& part_lines) const
{
    NDP_ASSERT(part_lines.size() == flushed_);
    const std::size_t total = part_lines.size() + events_.size();
    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
    std::size_t i = 0;
    for (const std::string& line : part_lines) {
        os << line;
        if (++i != total) {
            os << ",";
        }
        os << "\n";
    }
    for (const Event& e : events_) {
        renderEvent(os, e);
        if (++i != total) {
            os << ",";
        }
        os << "\n";
    }
    os << "]}\n";
}

void
TraceWriter::flushEventsTo(std::ostream& os)
{
    for (const Event& e : events_) {
        renderEvent(os, e);
        os << "\n";
    }
    flushed_ += events_.size();
    events_.clear();
}

void
TraceWriter::serialize(ckpt::Writer& w) const
{
    w.u64(flushed_);
    w.u64(events_.size());
    for (const Event& e : events_) {
        w.u8(static_cast<std::uint8_t>(e.ph));
        w.str(e.cat);
        w.str(e.name);
        w.u32(e.pid);
        w.u32(e.tid);
        w.u64(e.ts);
        w.u64(e.dur);
        w.u64(e.id);
        w.str(e.argsJson);
    }
}

void
TraceWriter::deserialize(ckpt::Reader& r)
{
    flushed_ = r.u64();
    events_.clear();
    const std::uint64_t n = r.u64();
    events_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        Event e;
        e.ph = static_cast<char>(r.u8());
        e.cat = r.str();
        e.name = r.str();
        e.pid = r.u32();
        e.tid = r.u32();
        e.ts = r.u64();
        e.dur = r.u64();
        e.id = r.u64();
        e.argsJson = r.str();
        events_.push_back(std::move(e));
    }
}

} // namespace ndpext
