/**
 * @file
 * Telemetry facade: one object owning the three observability sinks --
 * the MetricRegistry (epoch time-series), the TraceWriter (Perfetto
 * trace), and the DecisionLog (runtime-decision replay) -- plus the
 * per-core packet-sample buffers the cores fill on their shard threads.
 *
 * Contract (DESIGN.md §6): telemetry is OBSERVER-ONLY. Attaching it must
 * never change a RunResult: metrics are pull-mode reads taken at epoch
 * barriers on the main thread; packet samples are copies of completed
 * packets into shard-private (per-core) buffers drained at barriers in
 * core-id order; decisions are recorded on the main thread. Nothing here
 * feeds back into timing, placement, or RNG state, so test_sharding's
 * bit-identical guarantee holds with telemetry on or off at any
 * --threads value.
 *
 * Zero-cost when disabled: components hold a null Telemetry pointer by
 * default and every hook is a single pointer test on a path that already
 * performs a DRAM access (null-sink fast path). The only per-access hook
 * is the core's L1-miss sampler; everything else runs at epoch barriers.
 */

#ifndef NDPEXT_TELEMETRY_TELEMETRY_H
#define NDPEXT_TELEMETRY_TELEMETRY_H

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"
#include "telemetry/decision_log.h"
#include "telemetry/metric_registry.h"
#include "telemetry/request_trace.h"
#include "telemetry/trace_writer.h"

namespace ndpext {

struct TelemetryConfig
{
    /**
     * Output path prefix; writeAll() emits <prefix>.metrics.jsonl,
     * <prefix>.trace.json, <prefix>.decisions.jsonl and -- when request
     * tracing is on -- <prefix>.exemplars.jsonl. Empty = collect in
     * memory only (tests; determinism cross-checks).
     */
    std::string outPrefix;
    /** Sample every Nth L1 miss per core into the trace (0 = off). */
    std::uint64_t packetSampleEvery = 64;
    /** Epoch ring-buffer capacity (oldest epochs drop beyond this). */
    std::size_t ringCapacity = 4096;
    /** Packet-latency histogram range in cycles (overflow bin beyond). */
    double latencyHistMax = 20000.0;
    std::size_t latencyHistBuckets = 200;

    /** End-to-end request tracing (serving runs only). */
    bool traceRequests = false;
    /** Slowest exemplars retained per tenant per epoch. */
    std::uint64_t traceSlowK = 8;
    /** Uniform exemplar sample per tenant per epoch. */
    std::uint64_t traceUniformK = 8;
    /** Exemplar-reservoir hash seed. */
    std::uint64_t traceSeed = 0x7ACE5EED;
};

/** One sampled memory request, reconstructed from its LatencyBreakdown. */
struct PacketSample
{
    CoreId core = 0;
    StreamId sid = 0;
    /** Issue cycle at the core (span start in the trace). */
    Cycles start = 0;
    /** Stage cycles, same buckets as LatencyBreakdown. */
    Cycles metadata = 0;
    Cycles icnIntra = 0;
    Cycles icnInter = 0;
    Cycles dramCache = 0;
    Cycles extMem = 0;

    Cycles
    total() const
    {
        return metadata + icnIntra + icnInter + dramCache + extMem;
    }
};

/**
 * Shard-private sample sink handed to one core. The core calls tick()
 * once per L1 miss and record() when tick() said so; the main thread
 * drains at barriers (no core runs across a barrier).
 */
struct PacketSampleBuffer
{
    std::uint64_t every = 0;
    std::uint64_t seen = 0;
    std::vector<PacketSample> samples;

    /** True if the current miss should be recorded. */
    bool
    tick()
    {
        return every != 0 && (seen++ % every) == 0;
    }

    void record(PacketSample s) { samples.push_back(s); }
};

class Telemetry
{
  public:
    explicit Telemetry(const TelemetryConfig& config);

    Telemetry(const Telemetry&) = delete;
    Telemetry& operator=(const Telemetry&) = delete;

    const TelemetryConfig& config() const { return cfg_; }

    MetricRegistry& metrics() { return metrics_; }
    TraceWriter& trace() { return trace_; }
    DecisionLog& decisions() { return decisions_; }
    const MetricRegistry& metrics() const { return metrics_; }
    const TraceWriter& trace() const { return trace_; }
    const DecisionLog& decisions() const { return decisions_; }

    /** Create one sample buffer per core (before the run starts). */
    void initPacketSampling(std::uint32_t num_cores);

    /** The buffer core `c` writes into (null if sampling is off). */
    PacketSampleBuffer* packetBuffer(CoreId c);

    /**
     * Barrier-side: move new per-core samples (since the last drain)
     * into the trace and the epoch latency histogram, in core-id order.
     */
    void drainPacketSamples();

    /** Every drained sample, for tests and the final trace flush. */
    const std::vector<PacketSample>& drainedSamples() const
    {
        return drained_;
    }

    /** Cumulative latency histogram over drained samples. */
    const Histogram& packetLatencyHist() const { return latencyHist_; }

    /**
     * Arm end-to-end request tracing (no-op unless the config enables
     * it): one buffer per core, one reservoir per tenant, exemplar
     * spans into the trace writer. Serving runs only.
     */
    void initRequestTracing(
        std::uint32_t num_cores,
        std::vector<RequestTraceCollector::TenantMeta> tenants);

    /** The request-trace buffer core `c` writes into (null = off). */
    RequestTraceBuffer* requestBuffer(CoreId c);

    /** Barrier-side: move completed requests into their reservoirs. */
    void drainRequestTraces();

    /** Epoch barrier: select + export this epoch's exemplars. */
    void finalizeRequestEpoch(std::uint64_t epoch);

    RequestTraceCollector& requestTrace() { return reqTrace_; }
    const RequestTraceCollector& requestTrace() const { return reqTrace_; }

    /** Snapshot all metrics at an epoch barrier. */
    void sampleEpoch(std::uint64_t epoch, Cycles cycles);

    /**
     * Move everything accumulated so far out of memory into
     * <prefix>.{metrics,trace,decisions,exemplars}.part side files (one
     * rendered line per unit, appended) and drop the in-memory copies,
     * so the next checkpoint image stays flat no matter how many epochs
     * ran. Called right before each snapshot; writeAll() stitches the
     * side files back in front of the in-memory remainder. No-op
     * (returns true) when outPrefix is empty.
     */
    bool flushToDisk(std::string* error = nullptr);

    /**
     * Write <prefix>.{metrics.jsonl, trace.json, decisions.jsonl} and,
     * when request tracing is armed, <prefix>.exemplars.jsonl; flushed
     * .part side files are stitched in and removed on success.
     * No-op (returns true) when outPrefix is empty; returns false and
     * fills `error` (if non-null) on the first I/O failure.
     */
    bool writeAll(std::string* error = nullptr);

    /**
     * Checkpoint hooks. Deserialize expects the restoring process to
     * have constructed this object with the same config and called
     * initPacketSampling() with the same core count; everything the
     * sinks accumulated (ring, trace events, decisions, histogram,
     * sample buffers and drain cursors) is then replaced wholesale.
     */
    void serialize(ckpt::Writer& w) const;
    void deserialize(ckpt::Reader& r);

  private:
    void emitPacketTrace(const PacketSample& s);
    std::string partPath(const char* suffix) const;
    bool appendPart(const char* suffix,
                    const std::function<void(std::ostream&)>& writer,
                    std::string* error);
    bool readPartText(const char* suffix, std::uint64_t expected_lines,
                      std::string* out, std::string* error) const;
    void truncatePartFiles();
    void removePartFiles() const;

    TelemetryConfig cfg_;
    MetricRegistry metrics_;
    TraceWriter trace_;
    DecisionLog decisions_;
    RequestTraceCollector reqTrace_;
    Histogram latencyHist_;
    std::vector<std::unique_ptr<PacketSampleBuffer>> buffers_;
    /** Per-core drain watermark into buffers_[c]->samples. */
    std::vector<std::size_t> drainedUpTo_;
    std::vector<PacketSample> drained_;
    /** Samples ever drained (metric source; survives flushToDisk). */
    std::uint64_t drainedCount_ = 0;
    /** First flushToDisk truncates stale .part files, later ones append. */
    bool partFresh_ = true;
};

} // namespace ndpext

#endif // NDPEXT_TELEMETRY_TELEMETRY_H
