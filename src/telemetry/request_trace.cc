#include "telemetry/request_trace.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"
#include "telemetry/json_out.h"

namespace ndpext {

namespace {

/**
 * Slow-reservoir order: latency desc, ties broken (arrival, core) asc so
 * the retained set is independent of drain interleaving details.
 */
bool
slowerThan(const RequestTraceRecord& a, const RequestTraceRecord& b)
{
    if (a.latency() != b.latency()) {
        return a.latency() > b.latency();
    }
    if (a.arrival != b.arrival) {
        return a.arrival < b.arrival;
    }
    return a.core < b.core;
}

bool
sameRequest(const RequestTraceRecord& a, const RequestTraceRecord& b)
{
    return a.core == b.core && a.arrival == b.arrival && a.done == b.done;
}

void
writeRec(ckpt::Writer& w, const RequestTraceRecord& r)
{
    w.u32(r.tenant);
    w.u32(r.core);
    w.u64(r.arrival);
    w.u64(r.start);
    w.u64(r.done);
    w.u64(r.queueWait);
    w.u64(r.compute);
    w.u64(r.l1);
    w.u64(r.metadata);
    w.u64(r.icnIntra);
    w.u64(r.icnInter);
    w.u64(r.dramCache);
    w.u64(r.extMem);
    w.u64(r.mshrQueue);
}

RequestTraceRecord
readRec(ckpt::Reader& r)
{
    RequestTraceRecord rec;
    rec.tenant = r.u32();
    rec.core = r.u32();
    rec.arrival = r.u64();
    rec.start = r.u64();
    rec.done = r.u64();
    rec.queueWait = r.u64();
    rec.compute = r.u64();
    rec.l1 = r.u64();
    rec.metadata = r.u64();
    rec.icnIntra = r.u64();
    rec.icnInter = r.u64();
    rec.dramCache = r.u64();
    rec.extMem = r.u64();
    rec.mshrQueue = r.u64();
    return rec;
}

/** Stage spans in causal order; rendered sequentially from arrival. */
struct StageSlice
{
    const char* name;
    Cycles RequestTraceRecord::* field;
};

constexpr StageSlice kStages[] = {
    {"queueWait", &RequestTraceRecord::queueWait},
    {"compute", &RequestTraceRecord::compute},
    {"l1", &RequestTraceRecord::l1},
    {"metadata", &RequestTraceRecord::metadata},
    {"icnIntra", &RequestTraceRecord::icnIntra},
    {"icnInter", &RequestTraceRecord::icnInter},
    {"dramCache", &RequestTraceRecord::dramCache},
    {"extMem", &RequestTraceRecord::extMem},
    {"mshrQueue", &RequestTraceRecord::mshrQueue},
};

} // namespace

void
RequestTraceCollector::init(std::uint32_t num_cores,
                            std::vector<TenantMeta> tenants,
                            TraceWriter* trace)
{
    NDP_ASSERT(buffers_.empty());
    NDP_ASSERT(!tenants.empty());
    tenants_ = std::move(tenants);
    trace_ = trace;
    buffers_.reserve(num_cores);
    for (std::uint32_t c = 0; c < num_cores; ++c) {
        buffers_.push_back(std::make_unique<RequestTraceBuffer>());
    }
    cur_.resize(tenants_.size());
    if (trace_ != nullptr) {
        trace_->processName(TraceWriter::kPidRequests, "requests");
        for (std::size_t t = 0; t < tenants_.size(); ++t) {
            trace_->threadName(TraceWriter::kPidRequests,
                               static_cast<std::uint32_t>(t),
                               tenants_[t].name);
        }
    }
}

RequestTraceBuffer*
RequestTraceCollector::buffer(CoreId c)
{
    if (buffers_.empty()) {
        return nullptr;
    }
    NDP_ASSERT(c < buffers_.size());
    return buffers_[c].get();
}

void
RequestTraceCollector::drain()
{
    for (auto& buf : buffers_) {
        for (const RequestTraceRecord& r : buf->records) {
            offer(r);
        }
        buf->records.clear();
    }
}

void
RequestTraceCollector::offer(const RequestTraceRecord& r)
{
    NDP_ASSERT(r.tenant < cur_.size());
    Reservoir& res = cur_[r.tenant];
    res.count += 1;

    if (p_.slowK > 0) {
        if (res.slow.size() < p_.slowK
            || slowerThan(r, res.slow.back())) {
            auto it = std::upper_bound(res.slow.begin(), res.slow.end(), r,
                                       slowerThan);
            res.slow.insert(it, r);
            if (res.slow.size() > p_.slowK) {
                res.slow.pop_back();
            }
        }
    }

    if (p_.uniformK > 0) {
        if (res.uniform.size() < p_.uniformK) {
            res.uniform.push_back(r);
        } else {
            // Algorithm R with a counter-hashed draw: no RNG state to
            // checkpoint, and the decision for the n-th request of a
            // tenant is a pure function of (seed, tenant, n).
            const std::uint64_t draw = mix64(
                p_.seed ^ mix64(static_cast<std::uint64_t>(r.tenant) + 1));
            const std::uint64_t j = mix64(draw ^ res.count) % res.count;
            if (j < p_.uniformK) {
                res.uniform[j] = r;
            }
        }
    }
}

void
RequestTraceCollector::finalizeEpoch(std::uint64_t epoch)
{
    for (std::size_t t = 0; t < cur_.size(); ++t) {
        Reservoir& res = cur_[t];
        std::vector<Exemplar> picked;
        picked.reserve(res.slow.size() + res.uniform.size());
        for (const RequestTraceRecord& r : res.slow) {
            picked.push_back({r, epoch, true, 0});
        }
        // Uniform sample, minus requests already retained as slow;
        // (arrival, core) order keeps the output readable and stable.
        std::vector<RequestTraceRecord> uni = res.uniform;
        std::sort(uni.begin(), uni.end(),
                  [](const RequestTraceRecord& a,
                     const RequestTraceRecord& b) {
                      if (a.arrival != b.arrival) {
                          return a.arrival < b.arrival;
                      }
                      return a.core < b.core;
                  });
        for (const RequestTraceRecord& r : uni) {
            const bool dup = std::any_of(
                res.slow.begin(), res.slow.end(),
                [&](const RequestTraceRecord& s) {
                    return sameRequest(s, r);
                });
            if (!dup) {
                picked.push_back({r, epoch, false, 0});
            }
        }
        for (Exemplar& e : picked) {
            e.flowId = nextFlowId_++;
            emitExemplarTrace(e);
            retained_.push_back(e);
        }
        res.slow.clear();
        res.uniform.clear();
        res.count = 0;
    }
}

void
RequestTraceCollector::emitExemplarTrace(const Exemplar& e)
{
    if (trace_ == nullptr) {
        return;
    }
    const RequestTraceRecord& r = e.rec;
    const std::uint32_t tid = r.tenant;
    const std::string args = "{\"kind\":"
        + jsonout::str(e.slow ? "slow" : "uniform")
        + ",\"epoch\":" + std::to_string(e.epoch)
        + ",\"core\":" + std::to_string(r.core)
        + ",\"latency\":" + std::to_string(r.latency()) + "}";
    trace_->completeSpan("request", "request", TraceWriter::kPidRequests,
                         tid, r.arrival, r.latency(), args);
    // Child stage slices laid out sequentially in causal order. This is
    // an *attribution* tree -- the stall shares did not actually occur
    // back-to-back -- but the widths are the exact cycle attribution
    // and they tile [arrival, done) with no gap (stage-sum identity).
    Cycles cursor = r.arrival;
    for (const StageSlice& s : kStages) {
        const Cycles dur = r.*(s.field);
        if (dur == 0) {
            continue;
        }
        trace_->completeSpan("request", s.name, TraceWriter::kPidRequests,
                             tid, cursor, dur);
        cursor += dur;
    }
    trace_->flowStart("request", "req", TraceWriter::kPidRequests, tid,
                      r.arrival, e.flowId);
    trace_->flowStep("request", "req", TraceWriter::kPidRequests, tid,
                     r.start, e.flowId);
    trace_->flowEnd("request", "req", TraceWriter::kPidRequests, tid,
                    r.done, e.flowId);
}

void
RequestTraceCollector::writeExemplarLine(std::ostream& os,
                                         const Exemplar& e) const
{
    const RequestTraceRecord& r = e.rec;
    NDP_ASSERT(r.tenant < tenants_.size());
    const TenantMeta& tm = tenants_[r.tenant];
    const bool violation = tm.sloCycles > 0 && r.latency() > tm.sloCycles;
    os << "{\"epoch\":" << e.epoch << ",\"tenant\":" << jsonout::str(tm.name)
       << ",\"qos\":" << jsonout::str(tm.reserved ? "reserved" : "best-effort")
       << ",\"kind\":" << jsonout::str(e.slow ? "slow" : "uniform")
       << ",\"core\":" << r.core << ",\"flow\":" << e.flowId
       << ",\"arrival\":" << r.arrival << ",\"start\":" << r.start
       << ",\"done\":" << r.done << ",\"latency\":" << r.latency()
       << ",\"sloCycles\":" << tm.sloCycles
       << ",\"violation\":" << (violation ? 1 : 0) << ",\"stages\":{";
    bool first = true;
    for (const StageSlice& s : kStages) {
        if (!first) {
            os << ",";
        }
        first = false;
        os << "\"" << s.name << "\":" << r.*(s.field);
    }
    os << "}}\n";
}

void
RequestTraceCollector::writeJsonl(std::ostream& os) const
{
    for (const Exemplar& e : retained_) {
        writeExemplarLine(os, e);
    }
}

void
RequestTraceCollector::flushJsonl(std::ostream& os)
{
    writeJsonl(os);
    flushed_ += retained_.size();
    retained_.clear();
}

void
RequestTraceCollector::serialize(ckpt::Writer& w) const
{
    w.section(0x7ACE);
    // Buffers are drained at every barrier before a snapshot is taken.
    for (const auto& buf : buffers_) {
        NDP_ASSERT(buf->records.empty());
    }
    w.u64(cur_.size());
    for (const Reservoir& res : cur_) {
        w.u64(res.slow.size());
        for (const RequestTraceRecord& r : res.slow) {
            writeRec(w, r);
        }
        w.u64(res.uniform.size());
        for (const RequestTraceRecord& r : res.uniform) {
            writeRec(w, r);
        }
        w.u64(res.count);
    }
    w.u64(retained_.size());
    for (const Exemplar& e : retained_) {
        writeRec(w, e.rec);
        w.u64(e.epoch);
        w.b(e.slow);
        w.u64(e.flowId);
    }
    w.u64(flushed_);
    w.u64(nextFlowId_);
}

void
RequestTraceCollector::deserialize(ckpt::Reader& r)
{
    r.section(0x7ACE);
    const std::uint64_t ntenants = r.u64();
    NDP_ASSERT(ntenants == cur_.size());
    for (Reservoir& res : cur_) {
        res.slow.clear();
        res.uniform.clear();
        const std::uint64_t nslow = r.u64();
        res.slow.reserve(nslow);
        for (std::uint64_t i = 0; i < nslow; ++i) {
            res.slow.push_back(readRec(r));
        }
        const std::uint64_t nuni = r.u64();
        res.uniform.reserve(nuni);
        for (std::uint64_t i = 0; i < nuni; ++i) {
            res.uniform.push_back(readRec(r));
        }
        res.count = r.u64();
    }
    retained_.clear();
    const std::uint64_t nret = r.u64();
    retained_.reserve(nret);
    for (std::uint64_t i = 0; i < nret; ++i) {
        Exemplar e;
        e.rec = readRec(r);
        e.epoch = r.u64();
        e.slow = r.b();
        e.flowId = r.u64();
        retained_.push_back(e);
    }
    flushed_ = r.u64();
    nextFlowId_ = r.u64();
}

} // namespace ndpext
