/**
 * @file
 * Tiny JSON *output* helpers shared by the telemetry writers. Numbers are
 * printed with %.17g (round-trippable doubles, integers stay integral) and
 * NaN/Inf -- which JSON cannot represent -- degrade to 0/±1e308 so every
 * emitted file always parses.
 */

#ifndef NDPEXT_TELEMETRY_JSON_OUT_H
#define NDPEXT_TELEMETRY_JSON_OUT_H

#include <cmath>
#include <cstdio>
#include <string>

namespace ndpext {
namespace jsonout {

inline std::string
num(double v)
{
    if (std::isnan(v)) {
        return "0";
    }
    if (std::isinf(v)) {
        return v > 0 ? "1e308" : "-1e308";
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

inline std::string
escape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (const char c : s) {
        switch (c) {
          case '"':
            out += "\\\"";
            break;
          case '\\':
            out += "\\\\";
            break;
          case '\n':
            out += "\\n";
            break;
          case '\t':
            out += "\\t";
            break;
          case '\r':
            out += "\\r";
            break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

inline std::string
str(const std::string& s)
{
    // Built by append, not operator+: the `"lit" + std::string&&` form
    // trips GCC 12's -Wrestrict false positive under -Werror.
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    out += escape(s);
    out.push_back('"');
    return out;
}

} // namespace jsonout
} // namespace ndpext

#endif // NDPEXT_TELEMETRY_JSON_OUT_H
