/**
 * @file
 * Named-metric registry with epoch-resolved time-series sampling.
 *
 * Components register pull-mode metrics (a name plus a closure that reads
 * the live value); the registry never owns component state, so attaching
 * it is observer-only and cannot perturb simulation results. Registering
 * the same name twice *adds a source*: the sampled value is the sum over
 * all sources, which is exactly what the shard-cloned NoC/CXL models need
 * (each clone registers under the shared name and the series reports the
 * machine-wide total, mirroring StatGroup::add semantics).
 *
 * sample() snapshots every metric into a fixed-capacity ring buffer of
 * EpochSample records (oldest epochs are dropped once full, counted in
 * droppedSamples()); writeJsonl() flushes the buffered series as one JSON
 * object per line:
 *
 *   {"epoch":0,"cycles":250000,"metrics":{"cache.hits":123, ...}}
 *
 * Values are cumulative (not per-epoch deltas); consumers diff adjacent
 * records (see tools/ndpext_report). Metric naming scheme:
 * "<component>.<counter>" with dot-separated hierarchy, identical to the
 * StatGroup names in --stats-json where a counterpart exists.
 */

#ifndef NDPEXT_TELEMETRY_METRIC_REGISTRY_H
#define NDPEXT_TELEMETRY_METRIC_REGISTRY_H

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/histogram.h"
#include "common/types.h"
#include "sim/checkpoint.h"

namespace ndpext {

/** What a metric's value means; serialized into the JSONL header line. */
enum class MetricKind : std::uint8_t
{
    Counter, ///< monotonically non-decreasing cumulative count
    Gauge,   ///< instantaneous value (rates, ratios, sizes)
};

/** One sampled point-in-time snapshot of every registered metric. */
struct EpochSample
{
    std::uint64_t epoch = 0;
    Cycles cycles = 0;
    /** Values in registration order (summed over duplicate sources). */
    std::vector<double> values;
    /** count/mean/p50/p99/max per registered histogram, in order. */
    struct HistSnapshot
    {
        std::uint64_t count = 0;
        double mean = 0.0;
        double p50 = 0.0;
        double p99 = 0.0;
        double max = 0.0;
    };
    std::vector<HistSnapshot> hists;
};

class MetricRegistry
{
  public:
    /** @param ring_capacity epochs retained before dropping the oldest. */
    explicit MetricRegistry(std::size_t ring_capacity = 4096);

    /** Pull-mode source for a metric; must stay valid until the last
     *  sample(). Re-registering a name adds a source (values sum). */
    void registerCounter(const std::string& name,
                         std::function<double()> read);
    void registerGauge(const std::string& name,
                       std::function<double()> read);

    /** Register a live histogram; snapshots record its summary stats. */
    void registerHistogram(const std::string& name, const Histogram* hist);

    /** Snapshot every metric at an epoch barrier. */
    void sample(std::uint64_t epoch, Cycles cycles);

    std::size_t numMetrics() const { return metrics_.size(); }
    std::size_t numSamples() const { return ring_.size(); }
    std::uint64_t droppedSamples() const { return dropped_; }
    const std::deque<EpochSample>& samples() const { return ring_; }

    /** Name of metric `i` (registration order, deduplicated). */
    const std::string& metricName(std::size_t i) const
    {
        return metrics_[i].name;
    }

    /** Latest sampled value of a metric by name (0 if never sampled). */
    double latest(const std::string& name) const;

    /** Flush the buffered epoch series as JSONL (one object per epoch). */
    void writeJsonl(std::ostream& os) const;

    /**
     * writeJsonl + clear: the samples move to `os` (a .part side file)
     * and only the flushed-count cursor stays in memory, keeping
     * checkpoint images flat across epochs.
     */
    void flushJsonl(std::ostream& os);

    /** Samples already moved out via flushJsonl(). */
    std::uint64_t flushedSamples() const { return flushedSamples_; }

    /**
     * Checkpoint hooks: the sampled ring, drop counter and flush cursor
     * travel; metric/histogram registrations are re-made by the
     * components of the restoring process before deserialize() runs.
     */
    void serialize(ckpt::Writer& w) const;
    void deserialize(ckpt::Reader& r);

  private:
    struct Metric
    {
        std::string name;
        MetricKind kind = MetricKind::Counter;
        /** All registered sources; sampled value is their sum. */
        std::vector<std::function<double()>> sources;
    };
    struct HistEntry
    {
        std::string name;
        const Histogram* hist = nullptr;
    };

    void registerMetric(const std::string& name, MetricKind kind,
                        std::function<double()> read);
    void writeSampleLine(std::ostream& os, const EpochSample& s) const;

    std::vector<Metric> metrics_;
    std::map<std::string, std::size_t> index_;
    std::vector<HistEntry> hists_;
    std::deque<EpochSample> ring_;
    std::size_t capacity_;
    std::uint64_t dropped_ = 0;
    std::uint64_t flushedSamples_ = 0;
};

} // namespace ndpext

#endif // NDPEXT_TELEMETRY_METRIC_REGISTRY_H
