/**
 * @file
 * Interconnect timing/energy model over a MeshTopology.
 *
 * Table II parameters:
 *   intra-stack: 128-bit links, 1.5 ns/hop (3 core cycles @2 GHz), 0.4 pJ/bit
 *   inter-stack: 32 GB/s per direction, 10 ns/hop (20 cycles), 4 pJ/bit
 *
 * Intra-stack links are wide and plentiful, so they contribute latency and
 * energy only. Inter-stack SerDes links are the scarce resource the paper's
 * placement optimizes: each stack's egress toward each mesh direction is a
 * BandwidthResource, so hot stack-to-stack traffic queues.
 */

#ifndef NDPEXT_NOC_NOC_MODEL_H
#define NDPEXT_NOC_NOC_MODEL_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "noc/mesh.h"
#include "sim/port.h"
#include "sim/resource.h"
#include "sim/stats.h"

namespace ndpext {

struct NocParams
{
    /** Per-hop latency of the intra-stack mesh, core cycles. */
    Cycles intraHopCycles = 3;
    /** Per-hop latency of inter-stack links, core cycles. */
    Cycles interHopCycles = 20;
    /** Inter-stack link bandwidth per direction, bytes per core cycle. */
    double interLinkBytesPerCycle = 16.0; // 32 GB/s @ 2 GHz
    /** Intra-stack hop energy, pJ per bit. */
    double intraPjPerBit = 0.4;
    /** Inter-stack hop energy, pJ per bit. */
    double interPjPerBit = 4.0;
};

/** Outcome of one network transfer. */
struct NocResult
{
    /** Arrival time of the payload at the destination. */
    Cycles done = 0;
    std::uint32_t intraHops = 0;
    std::uint32_t interHops = 0;
};

class NocModel : public MemObject
{
  public:
    NocModel(const MeshTopology& topo, const NocParams& params);

    NocModel(const NocModel&) = delete;
    NocModel& operator=(const NocModel&) = delete;

    /**
     * Port protocol: move pkt.bytes along the leg pkt.hopSrc -> pkt.hopDst
     * (Packet::kCxlEndpoint addresses the CXL portal), advancing pkt.ready
     * and charging the elapsed cycles to the packet's icnIntra/icnInter
     * buckets. Exposed as response port "in".
     */
    void recvAtomic(Packet& pkt);

    /**
     * Move `bytes` from unit `src` to unit `dst` starting at `now`;
     * reserves inter-stack links along the XY stack route. `sid` owns the
     * transfer for energy attribution (kNoStream = unattributed).
     */
    NocResult transfer(UnitId src, UnitId dst, std::uint32_t bytes,
                       Cycles now, StreamId sid = kNoStream);

    /**
     * Transfer between a unit and the CXL attach point (the portal of the
     * CXL stack); used on every extended-memory access.
     */
    NocResult transferToCxl(UnitId src, std::uint32_t bytes, Cycles now,
                            StreamId sid = kNoStream);
    NocResult transferFromCxl(UnitId dst, std::uint32_t bytes, Cycles now,
                              StreamId sid = kNoStream);

    /** Zero-load latency between two units (no reservation). */
    Cycles
    pureLatency(UnitId src, UnitId dst) const
    {
        const auto& hops = routeFor(src, dst);
        return static_cast<Cycles>(hops.intra) * params_.intraHopCycles
            + static_cast<Cycles>(hops.inter) * params_.interHopCycles;
    }

    /** Attenuation factor k = dramLat / (dramLat + icnLat) (Section V-C). */
    double attenuation(UnitId from, UnitId to, Cycles dram_latency) const;

    const MeshTopology& topology() const { return topo_; }
    const NocParams& params() const { return params_; }

    double energyNj() const { return energyNj_; }
    /** Energy of transfers owned by stream `sid` (0 if never seen). */
    double
    streamEnergyNj(StreamId sid) const
    {
        return sid < streamEnergyNj_.size() ? streamEnergyNj_[sid] : 0.0;
    }
    /** Energy of kNoStream transfers (core writebacks, metadata, ...);
     *  together with the per-stream shares this covers energyNj(). */
    double unattributedEnergyNj() const { return noStreamEnergyNj_; }
    std::uint64_t transfers() const { return transfers_; }
    /** Sum over transfers of (arrival - request) cycles. */
    Cycles totalTransferCycles() const { return totalCycles_; }
    /** Bytes moved, weighted by hops of each link class (bandwidth). */
    std::uint64_t intraHopBytes() const { return intraHopBytes_; }
    std::uint64_t interHopBytes() const { return interHopBytes_; }

    void report(StatGroup& stats, const std::string& prefix) const;
    void reset();

    /** Registers "noc.*" series (shard clones sum into one series). */
    void registerMetrics(MetricRegistry& registry) override;

    /** Checkpoint hooks (topology/routes are configuration). */
    void
    serialize(ckpt::Writer& w) const
    {
        w.u64(links_.size());
        for (const auto& dirs : links_) {
            w.u64(dirs.size());
            for (const BandwidthResource& link : dirs) {
                link.serialize(w);
            }
        }
        w.d(energyNj_);
        w.vecD(streamEnergyNj_);
        w.d(noStreamEnergyNj_);
        w.u64(transfers_);
        w.u64(totalCycles_);
        w.u64(intraHopBytes_);
        w.u64(interHopBytes_);
    }

    void
    deserialize(ckpt::Reader& r)
    {
        const std::uint64_t stacks = r.u64();
        NDP_ASSERT(stacks == links_.size(), "NoC stack count mismatch");
        for (auto& dirs : links_) {
            const std::uint64_t n = r.u64();
            NDP_ASSERT(n == dirs.size(), "NoC link count mismatch");
            for (BandwidthResource& link : dirs) {
                link.deserialize(r);
            }
        }
        energyNj_ = r.d();
        streamEnergyNj_ = r.vecD();
        noStreamEnergyNj_ = r.d();
        transfers_ = r.u64();
        totalCycles_ = r.u64();
        intraHopBytes_ = r.u64();
        interHopBytes_ = r.u64();
    }

  protected:
    MemPort* getPort(const std::string& port_name) override
    {
        return port_name == "in" ? &in_ : nullptr;
    }

  private:
    /** Response port adapter forwarding into recvAtomic(). */
    class InPort final : public MemPort
    {
      public:
        explicit InPort(NocModel& owner)
            : MemPort("noc.in"), owner_(owner)
        {
        }
        void recvAtomic(Packet& pkt) final { owner_.recvAtomic(pkt); }

      private:
        NocModel& owner_;
    };

    InPort in_{*this};

    /** Reserve the egress link of `stack` toward direction `dir`. */
    Cycles reserveHop(StackId stack, int dir, std::uint32_t bytes,
                      Cycles at);

    /** Walk the XY stack route reserving each inter-stack hop. */
    Cycles routeStacks(StackId src, StackId dst, std::uint32_t bytes,
                       Cycles start, std::uint32_t* inter_hops);

    NocResult transferUnitPortal(UnitId unit, StackId portal_stack,
                                 std::uint32_t bytes, Cycles now,
                                 bool to_portal, StreamId sid);

    /** Add `nj` to the machine total and to `sid`'s attribution slot. */
    void chargeEnergy(StreamId sid, double nj);

    /** Cached hop counts of the (static) route src -> dst. */
    const MeshTopology::Hops&
    routeFor(UnitId src, UnitId dst) const
    {
        return routeCache_[static_cast<std::size_t>(src) * topo_.numUnits()
                           + dst];
    }

    MeshTopology topo_;
    NocParams params_;
    /** [stack][direction 0..3] egress link resources (E,W,N,S). */
    std::vector<std::vector<BandwidthResource>> links_;
    /**
     * The topology never changes after construction, so hop counts for
     * every (src, dst) pair and every unit's portal distance are
     * precomputed here; route() walked coordinates on every transfer
     * and showed up in the engine hot path.
     */
    std::vector<MeshTopology::Hops> routeCache_;
    std::vector<std::uint32_t> portalHops_;

    double energyNj_ = 0.0;
    /** Per-stream energy attribution (resize-on-demand by sid). */
    std::vector<double> streamEnergyNj_;
    double noStreamEnergyNj_ = 0.0;
    std::uint64_t transfers_ = 0;
    Cycles totalCycles_ = 0;
    std::uint64_t intraHopBytes_ = 0;
    std::uint64_t interHopBytes_ = 0;
};

} // namespace ndpext

#endif // NDPEXT_NOC_NOC_MODEL_H
