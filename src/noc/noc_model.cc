#include "noc/noc_model.h"

#include "telemetry/metric_registry.h"

#include <algorithm>

#include "common/logging.h"

namespace ndpext {

namespace {

enum Direction
{
    kEast = 0,
    kWest = 1,
    kNorth = 2,
    kSouth = 3
};

} // namespace

NocModel::NocModel(const MeshTopology& topo, const NocParams& params)
    : MemObject("noc"), topo_(topo), params_(params),
      links_(topo.numStacks(),
             std::vector<BandwidthResource>(
                 4, BandwidthResource(params.interLinkBytesPerCycle)))
{
    const std::uint32_t n = topo_.numUnits();
    routeCache_.resize(static_cast<std::size_t>(n) * n);
    for (UnitId src = 0; src < n; ++src) {
        for (UnitId dst = 0; dst < n; ++dst) {
            routeCache_[static_cast<std::size_t>(src) * n + dst] =
                topo_.route(src, dst);
        }
    }
    portalHops_.resize(n);
    for (UnitId u = 0; u < n; ++u) {
        portalHops_[u] = topo_.hopsToPortal(u);
    }
}

void
NocModel::recvAtomic(Packet& pkt)
{
    NocResult res;
    if (pkt.hopDst == Packet::kCxlEndpoint) {
        res = transferToCxl(pkt.hopSrc, pkt.bytes, pkt.ready, pkt.sid);
    } else if (pkt.hopSrc == Packet::kCxlEndpoint) {
        res = transferFromCxl(pkt.hopDst, pkt.bytes, pkt.ready, pkt.sid);
    } else {
        res = transfer(pkt.hopSrc, pkt.hopDst, pkt.bytes, pkt.ready,
                       pkt.sid);
    }
    const Cycles intra =
        static_cast<Cycles>(res.intraHops) * params_.intraHopCycles;
    pkt.bd.icnIntra += intra;
    pkt.bd.icnInter += (res.done - pkt.ready) - intra;
    pkt.ready = res.done;
}

Cycles
NocModel::reserveHop(StackId stack, int dir, std::uint32_t bytes, Cycles at)
{
    BandwidthResource& link = links_[stack][static_cast<std::size_t>(dir)];
    const Cycles start = link.reserve(bytes, at);
    return start + params_.interHopCycles + link.serviceCycles(bytes);
}

Cycles
NocModel::routeStacks(StackId src, StackId dst, std::uint32_t bytes,
                      Cycles start, std::uint32_t* inter_hops)
{
    // Dimension-ordered (XY) routing over the stack mesh.
    Coord cur = topo_.stackCoord(src);
    const Coord end = topo_.stackCoord(dst);
    Cycles t = start;
    std::uint32_t hops = 0;
    StackId at = src;
    while (cur.x != end.x) {
        const int dir = cur.x < end.x ? kEast : kWest;
        t = reserveHop(at, dir, bytes, t);
        cur.x = cur.x < end.x ? cur.x + 1 : cur.x - 1;
        at = cur.y * topo_.stacksX() + cur.x;
        ++hops;
    }
    while (cur.y != end.y) {
        const int dir = cur.y < end.y ? kSouth : kNorth;
        t = reserveHop(at, dir, bytes, t);
        cur.y = cur.y < end.y ? cur.y + 1 : cur.y - 1;
        at = cur.y * topo_.stacksX() + cur.x;
        ++hops;
    }
    if (inter_hops != nullptr) {
        *inter_hops = hops;
    }
    return t;
}

void
NocModel::chargeEnergy(StreamId sid, double nj)
{
    energyNj_ += nj;
    if (sid == kNoStream) {
        noStreamEnergyNj_ += nj;
    } else {
        if (streamEnergyNj_.size() <= sid) {
            streamEnergyNj_.resize(sid + 1, 0.0);
        }
        streamEnergyNj_[sid] += nj;
    }
}

NocResult
NocModel::transfer(UnitId src, UnitId dst, std::uint32_t bytes, Cycles now,
                   StreamId sid)
{
    NocResult res;
    if (src == dst) {
        res.done = now;
        return res;
    }
    const auto& hops = routeFor(src, dst);
    Cycles t = now + static_cast<Cycles>(hops.intra) * params_.intraHopCycles;
    if (hops.inter > 0) {
        std::uint32_t inter = 0;
        t = routeStacks(topo_.stackOf(src), topo_.stackOf(dst), bytes, t,
                        &inter);
        NDP_ASSERT(inter == hops.inter);
    }
    res.done = t;
    res.intraHops = hops.intra;
    res.interHops = hops.inter;

    const double bits = static_cast<double>(bytes) * 8.0;
    chargeEnergy(sid,
                 bits * params_.intraPjPerBit * 1e-3
                         * static_cast<double>(hops.intra)
                     + bits * params_.interPjPerBit * 1e-3
                         * static_cast<double>(hops.inter));
    intraHopBytes_ += static_cast<std::uint64_t>(bytes) * hops.intra;
    interHopBytes_ += static_cast<std::uint64_t>(bytes) * hops.inter;
    ++transfers_;
    totalCycles_ += res.done - now;
    return res;
}

NocResult
NocModel::transferUnitPortal(UnitId unit, StackId portal_stack,
                             std::uint32_t bytes, Cycles now, bool to_portal,
                             StreamId sid)
{
    NocResult res;
    const StackId ustack = topo_.stackOf(unit);
    const std::uint32_t intra = portalHops_[unit];
    Cycles t = now + static_cast<Cycles>(intra) * params_.intraHopCycles;
    std::uint32_t inter = 0;
    if (ustack != portal_stack) {
        if (to_portal) {
            t = routeStacks(ustack, portal_stack, bytes, t, &inter);
        } else {
            t = routeStacks(portal_stack, ustack, bytes, now, &inter);
            t += static_cast<Cycles>(intra) * params_.intraHopCycles;
        }
    }
    res.done = t;
    res.intraHops = intra;
    res.interHops = inter;

    const double bits = static_cast<double>(bytes) * 8.0;
    chargeEnergy(sid,
                 bits * params_.intraPjPerBit * 1e-3
                         * static_cast<double>(intra)
                     + bits * params_.interPjPerBit * 1e-3
                         * static_cast<double>(inter));
    intraHopBytes_ += static_cast<std::uint64_t>(bytes) * intra;
    interHopBytes_ += static_cast<std::uint64_t>(bytes) * inter;
    ++transfers_;
    totalCycles_ += res.done - now;
    return res;
}

NocResult
NocModel::transferToCxl(UnitId src, std::uint32_t bytes, Cycles now,
                        StreamId sid)
{
    return transferUnitPortal(src, topo_.cxlStack(), bytes, now, true, sid);
}

NocResult
NocModel::transferFromCxl(UnitId dst, std::uint32_t bytes, Cycles now,
                          StreamId sid)
{
    return transferUnitPortal(dst, topo_.cxlStack(), bytes, now, false,
                              sid);
}

double
NocModel::attenuation(UnitId from, UnitId to, Cycles dram_latency) const
{
    const Cycles icn = pureLatency(from, to);
    return static_cast<double>(dram_latency)
        / static_cast<double>(dram_latency + icn);
}

void
NocModel::report(StatGroup& stats, const std::string& prefix) const
{
    stats.add(prefix + ".transfers", static_cast<double>(transfers_));
    stats.add(prefix + ".totalCycles", static_cast<double>(totalCycles_));
    stats.add(prefix + ".energyNj", energyNj_);
    double reservations = 0.0;
    double queue_cycles = 0.0;
    for (const auto& stack_links : links_) {
        for (const auto& link : stack_links) {
            reservations += static_cast<double>(link.reservations());
            queue_cycles += static_cast<double>(link.totalQueueCycles());
        }
    }
    stats.add(prefix + ".linkReservations", reservations);
    stats.add(prefix + ".linkQueueCycles", queue_cycles);
    stats.add(prefix + ".intraHopBytes",
              static_cast<double>(intraHopBytes_));
    stats.add(prefix + ".interHopBytes",
              static_cast<double>(interHopBytes_));
}

void
NocModel::registerMetrics(MetricRegistry& registry)
{
    registry.registerCounter("noc.transfers",
                             [this] { return double(transfers_); });
    registry.registerCounter("noc.totalCycles",
                             [this] { return double(totalCycles_); });
    registry.registerCounter("noc.intraHopBytes",
                             [this] { return double(intraHopBytes_); });
    registry.registerCounter("noc.interHopBytes",
                             [this] { return double(interHopBytes_); });
    registry.registerCounter("noc.energyNj",
                             [this] { return energyNj_; });
    registry.registerCounter("noc.linkQueueCycles", [this] {
        double queue_cycles = 0.0;
        for (const auto& stack_links : links_) {
            for (const auto& link : stack_links) {
                queue_cycles += double(link.totalQueueCycles());
            }
        }
        return queue_cycles;
    });
}

void
NocModel::reset()
{
    for (auto& stack_links : links_) {
        for (auto& link : stack_links) {
            link.reset();
        }
    }
    energyNj_ = 0.0;
    streamEnergyNj_.clear();
    noStreamEnergyNj_ = 0.0;
    transfers_ = 0;
    totalCycles_ = 0;
    intraHopBytes_ = 0;
    interHopBytes_ = 0;
}

} // namespace ndpext
