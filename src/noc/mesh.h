/**
 * @file
 * Geometry of the NDP interconnect: a mesh of 3D stacks, each containing an
 * internal mesh of NDP units (Section III-A, Fig. 1).
 *
 * Unit ids are assigned stack-major: unit = stack * unitsPerStack + local,
 * with local ids row-major within the stack's unitsX x unitsY grid, and
 * stack ids row-major within the stacksX x stacksY grid.
 */

#ifndef NDPEXT_NOC_MESH_H
#define NDPEXT_NOC_MESH_H

#include <cstdint>

#include "common/types.h"

namespace ndpext {

/** Integer 2-D coordinate. */
struct Coord
{
    std::uint32_t x = 0;
    std::uint32_t y = 0;

    bool operator==(const Coord&) const = default;
};

class MeshTopology
{
  public:
    /**
     * @param stacks_x,stacks_y  Inter-stack mesh shape (Table II: 4x2).
     * @param units_x,units_y    Intra-stack mesh shape (Table II: 4x4).
     */
    MeshTopology(std::uint32_t stacks_x, std::uint32_t stacks_y,
                 std::uint32_t units_x, std::uint32_t units_y);

    std::uint32_t numStacks() const { return stacksX_ * stacksY_; }
    std::uint32_t unitsPerStack() const { return unitsX_ * unitsY_; }
    std::uint32_t numUnits() const { return numStacks() * unitsPerStack(); }
    std::uint32_t stacksX() const { return stacksX_; }
    std::uint32_t stacksY() const { return stacksY_; }

    StackId stackOf(UnitId unit) const;
    Coord stackCoord(StackId stack) const;
    Coord localCoord(UnitId unit) const;
    UnitId unitAt(StackId stack, Coord local) const;

    /** Manhattan distance between two stacks in the stack mesh. */
    std::uint32_t stackDistance(StackId a, StackId b) const;

    /** Intra-stack Manhattan distance (same stack required). */
    std::uint32_t localDistance(UnitId a, UnitId b) const;

    /**
     * Intra-stack hops from a unit to its stack's inter-stack portal.
     * The portal sits at the mesh center, so corner units pay more hops to
     * leave the stack, matching the "center is more valuable" effect the
     * paper discusses in Section III-B.
     */
    std::uint32_t hopsToPortal(UnitId unit) const;

    /**
     * Total (intra_hops, inter_hops) of the route between two units:
     * same stack -> local Manhattan route; different stacks -> source
     * portal, stack-mesh route, destination portal.
     */
    struct Hops
    {
        std::uint32_t intra = 0;
        std::uint32_t inter = 0;
    };
    Hops route(UnitId src, UnitId dst) const;

    /** The stack hosting the CXL controller attach point (stack 0). */
    StackId cxlStack() const { return 0; }

  private:
    std::uint32_t stacksX_;
    std::uint32_t stacksY_;
    std::uint32_t unitsX_;
    std::uint32_t unitsY_;
};

} // namespace ndpext

#endif // NDPEXT_NOC_MESH_H
