#include "noc/mesh.h"

#include <cstdlib>

#include "common/logging.h"

namespace ndpext {

namespace {

std::uint32_t
absDiff(std::uint32_t a, std::uint32_t b)
{
    return a > b ? a - b : b - a;
}

} // namespace

MeshTopology::MeshTopology(std::uint32_t stacks_x, std::uint32_t stacks_y,
                           std::uint32_t units_x, std::uint32_t units_y)
    : stacksX_(stacks_x), stacksY_(stacks_y), unitsX_(units_x),
      unitsY_(units_y)
{
    NDP_ASSERT(stacks_x > 0 && stacks_y > 0 && units_x > 0 && units_y > 0);
}

StackId
MeshTopology::stackOf(UnitId unit) const
{
    NDP_ASSERT(unit < numUnits(), "unit=", unit);
    return unit / unitsPerStack();
}

Coord
MeshTopology::stackCoord(StackId stack) const
{
    NDP_ASSERT(stack < numStacks(), "stack=", stack);
    return Coord{stack % stacksX_, stack / stacksX_};
}

Coord
MeshTopology::localCoord(UnitId unit) const
{
    const std::uint32_t local = unit % unitsPerStack();
    return Coord{local % unitsX_, local / unitsX_};
}

UnitId
MeshTopology::unitAt(StackId stack, Coord local) const
{
    NDP_ASSERT(stack < numStacks() && local.x < unitsX_
               && local.y < unitsY_);
    return stack * unitsPerStack() + local.y * unitsX_ + local.x;
}

std::uint32_t
MeshTopology::stackDistance(StackId a, StackId b) const
{
    const Coord ca = stackCoord(a);
    const Coord cb = stackCoord(b);
    return absDiff(ca.x, cb.x) + absDiff(ca.y, cb.y);
}

std::uint32_t
MeshTopology::localDistance(UnitId a, UnitId b) const
{
    NDP_ASSERT(stackOf(a) == stackOf(b));
    const Coord ca = localCoord(a);
    const Coord cb = localCoord(b);
    return absDiff(ca.x, cb.x) + absDiff(ca.y, cb.y);
}

std::uint32_t
MeshTopology::hopsToPortal(UnitId unit) const
{
    // Portal at the (rounded-down) center of the intra-stack mesh.
    const Coord c = localCoord(unit);
    const Coord portal{(unitsX_ - 1) / 2, (unitsY_ - 1) / 2};
    return absDiff(c.x, portal.x) + absDiff(c.y, portal.y);
}

MeshTopology::Hops
MeshTopology::route(UnitId src, UnitId dst) const
{
    Hops h;
    if (src == dst) {
        return h;
    }
    if (stackOf(src) == stackOf(dst)) {
        h.intra = localDistance(src, dst);
        return h;
    }
    h.intra = hopsToPortal(src) + hopsToPortal(dst);
    h.inter = stackDistance(stackOf(src), stackOf(dst));
    return h;
}

} // namespace ndpext
