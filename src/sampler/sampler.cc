#include "sampler/sampler.h"

#include <algorithm>
#include <cmath>

#include "common/bitutils.h"
#include "common/logging.h"
#include "common/rng.h"

namespace ndpext {

MissCurveSampler::MissCurveSampler(const SamplerParams& params)
    : params_(params)
{
    NDP_ASSERT(params.kSets > 0 && params.numCapacities >= 2);
    NDP_ASSERT(params.minCapacityBytes > 0
               && params.maxCapacityBytes > params.minCapacityBytes);
    // Geometric partition of [min, max] (Section V-A: factor
    // (max/min)^(1/(c-1)), e.g. 1.16 for 32 kB..256 MB over 64 cases).
    const double ratio = std::pow(
        static_cast<double>(params.maxCapacityBytes)
            / static_cast<double>(params.minCapacityBytes),
        1.0 / static_cast<double>(params.numCapacities - 1));
    capacities_.reserve(params.numCapacities);
    double cap = static_cast<double>(params.minCapacityBytes);
    for (std::uint32_t i = 0; i < params.numCapacities; ++i) {
        auto c = static_cast<std::uint64_t>(cap);
        if (!capacities_.empty() && c <= capacities_.back()) {
            c = capacities_.back() + 1; // keep strictly ascending
        }
        capacities_.push_back(c);
        cap *= ratio;
    }
    capacities_.back() = params.maxCapacityBytes;
}

void
MissCurveSampler::configure(StreamId sid, std::uint32_t granule_bytes)
{
    sid_ = sid;
    if (sid == kNoStream) {
        cases_.clear();
        accesses_ = 0;
        return;
    }
    NDP_ASSERT(granule_bytes > 0);
    granuleBytes_ = granule_bytes;
    accesses_ = 0;
    cases_.assign(capacities_.size(), CapacityCase{});
    for (std::size_t i = 0; i < capacities_.size(); ++i) {
        CapacityCase& cc = cases_[i];
        cc.totalSlots = std::max<std::uint64_t>(
            1, capacities_[i] / granule_bytes);
        cc.sampleStep = std::max<std::uint64_t>(
            1, cc.totalSlots / params_.kSets);
        cc.tags.assign(
            std::min<std::uint64_t>(params_.kSets, cc.totalSlots), 0);
    }
}

void
MissCurveSampler::observe(std::uint64_t granule_id)
{
    NDP_ASSERT(assigned());
    ++accesses_;
    const std::uint64_t h = mix64(granule_id ^ mix64(0xa11ce + sid_));
    const std::uint64_t key = granule_id + 1; // 0 = empty tag
    for (auto& cc : cases_) {
        const std::uint64_t slot = h % cc.totalSlots;
        if (slot % cc.sampleStep != 0) {
            continue; // not a sampled set (static interleaving)
        }
        const std::uint64_t idx = slot / cc.sampleStep;
        if (idx >= cc.tags.size()) {
            continue;
        }
        ++cc.observed;
        if (cc.tags[idx] == key) {
            ++cc.hits;
        } else {
            cc.tags[idx] = key;
        }
    }
}

MissCurve
MissCurveSampler::curve(std::uint64_t total_stream_accesses) const
{
    NDP_ASSERT(assigned());
    std::vector<double> misses(capacities_.size(), 0.0);
    for (std::size_t i = 0; i < capacities_.size(); ++i) {
        const CapacityCase& cc = cases_[i];
        double miss_rate = 1.0;
        if (cc.observed > 0) {
            miss_rate = 1.0
                - static_cast<double>(cc.hits)
                    / static_cast<double>(cc.observed);
        }
        misses[i] = miss_rate * static_cast<double>(total_stream_accesses);
    }
    MissCurve curve(capacities_, std::move(misses));
    curve.setZeroMisses(static_cast<double>(total_stream_accesses));
    return curve;
}

SamplerBank::SamplerBank(std::uint32_t num_samplers,
                         const SamplerParams& params)
    : samplers_(num_samplers, MissCurveSampler(params)),
      accessed_(StreamTable::kMaxStreams, false),
      counts_(StreamTable::kMaxStreams, 0)
{
    NDP_ASSERT(num_samplers > 0);
}

void
SamplerBank::assign(
    const std::vector<std::pair<StreamId, std::uint32_t>>& stream_granules)
{
    NDP_ASSERT(stream_granules.size() <= samplers_.size(),
               "more assignments than samplers");
    // Keep samplers that stay on the same stream so reuse accumulates
    // across epochs; reconfigure only the slots whose stream changed.
    std::vector<bool> slot_kept(samplers_.size(), false);
    std::vector<std::pair<StreamId, std::uint32_t>> pending;
    for (const auto& [sid, granule] : stream_granules) {
        bool kept = false;
        for (std::size_t i = 0; i < samplers_.size(); ++i) {
            if (!slot_kept[i] && samplers_[i].assigned()
                && samplers_[i].sid() == sid) {
                slot_kept[i] = true;
                kept = true;
                break;
            }
        }
        if (!kept) {
            pending.emplace_back(sid, granule);
        }
    }
    std::size_t next = 0;
    for (std::size_t i = 0; i < samplers_.size(); ++i) {
        if (slot_kept[i]) {
            continue;
        }
        if (next < pending.size()) {
            samplers_[i].configure(pending[next].first,
                                   pending[next].second);
            ++next;
        } else {
            samplers_[i].configure(kNoStream, 0);
        }
    }
    NDP_ASSERT(next == pending.size());
}

void
SamplerBank::observe(StreamId sid, std::uint64_t granule_id)
{
    if (sid >= accessed_.size()) {
        return;
    }
    accessed_[sid] = true;
    ++counts_[sid];
    for (auto& s : samplers_) {
        if (s.assigned() && s.sid() == sid) {
            s.observe(granule_id);
            return;
        }
    }
}

std::uint64_t
SamplerBank::accessCount(StreamId sid) const
{
    return sid < counts_.size() ? counts_[sid] : 0;
}

const MissCurveSampler*
SamplerBank::samplerFor(StreamId sid) const
{
    for (const auto& s : samplers_) {
        if (s.assigned() && s.sid() == sid) {
            return &s;
        }
    }
    return nullptr;
}

void
SamplerBank::newEpoch()
{
    std::fill(accessed_.begin(), accessed_.end(), false);
    std::fill(counts_.begin(), counts_.end(), 0);
}

} // namespace ndpext
