/**
 * @file
 * A stream's miss curve: estimated misses as a function of cache capacity.
 *
 * Produced by the hardware set-based samplers (Section V-A) at geometric
 * capacity points; consumed by the configuration algorithm (Section V-C),
 * which repeatedly asks for the steepest marginal utility. Interpolation is
 * linear in log-capacity, as in Jigsaw/CDCS; miss counts are clamped to be
 * non-increasing in capacity before use.
 */

#ifndef NDPEXT_SAMPLER_MISS_CURVE_H
#define NDPEXT_SAMPLER_MISS_CURVE_H

#include <cstdint>
#include <vector>

#include "common/types.h"

namespace ndpext {

class MissCurve
{
  public:
    MissCurve() = default;

    /**
     * @param capacities ascending capacity points in bytes.
     * @param misses     estimated misses at each point (same length);
     *                   clamped to non-increasing.
     */
    MissCurve(std::vector<std::uint64_t> capacities,
              std::vector<double> misses);

    /**
     * Misses with (near-)zero cache, i.e., the stream's access count.
     * Without it, capacities below the first sampled point clamp to the
     * first point and the lookahead sees zero utility for the very first
     * allocation segment. Values below the first point's misses are
     * ignored.
     */
    void setZeroMisses(double misses);
    double zeroMisses() const { return zeroMisses_; }

    bool empty() const { return capacities_.empty(); }
    std::size_t numPoints() const { return capacities_.size(); }
    const std::vector<std::uint64_t>& capacities() const
    {
        return capacities_;
    }
    const std::vector<double>& misses() const { return misses_; }

    /** Estimated misses with `capacity` bytes of cache (interpolated). */
    double missesAt(std::uint64_t capacity) const;

    /**
     * The next capacity point strictly above `capacity`, or 0 if the
     * curve is exhausted (allocating further cannot help).
     */
    std::uint64_t nextPointAbove(std::uint64_t capacity) const;

    /**
     * Marginal utility of growing from `capacity` to the next point:
     * (misses avoided) / (bytes added). Returns 0 at the curve end.
     */
    double slopeAt(std::uint64_t capacity) const;

    /**
     * True lookahead (UCP): the segment from `capacity` to the future
     * point with the maximum (misses avoided)/(bytes added). A single
     * flat region therefore cannot hide a steep cliff behind it.
     */
    struct Segment
    {
        std::uint64_t target = 0; ///< capacity to grow to (0 = none)
        double slope = 0.0;
    };
    Segment bestSegment(std::uint64_t capacity) const;

    /**
     * Pointwise minimum of two curves over the same capacity points
     * (optimistic blend of a measured curve with a prior).
     */
    static MissCurve pointwiseMin(const MissCurve& a, const MissCurve& b);

  private:
    std::vector<std::uint64_t> capacities_;
    std::vector<double> misses_;
    double zeroMisses_ = -1.0; ///< unset: clamp to the first point
};

} // namespace ndpext

#endif // NDPEXT_SAMPLER_MISS_CURVE_H
