/**
 * @file
 * Set-based hardware miss-curve samplers (Section V-A) and the per-unit
 * sampler bank with the stream-access bitvector (Section V-B).
 *
 * NDPExt's DRAM cache is hash-indexed with low associativity, so capacity
 * is partitioned along sets and the stack property does not hold; each
 * sampler therefore simulates c = 64 independent capacity cases spanning a
 * geometric range, sampling k = 32 sets per case via static interleaving
 * and counting hits/misses on single-tag shadow sets. A sampler costs
 * 32 x 64 x 4 B = 8 kB of SRAM; four fit in each unit (32 kB).
 */

#ifndef NDPEXT_SAMPLER_SAMPLER_H
#define NDPEXT_SAMPLER_SAMPLER_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "sampler/miss_curve.h"
#include "sim/checkpoint.h"
#include "sim/stats.h"
#include "stream/stream_table.h"

namespace ndpext {

struct SamplerParams
{
    /** Sampled sets per capacity case (k). */
    std::uint32_t kSets = 32;
    /** Number of capacity cases (c). */
    std::uint32_t numCapacities = 64;
    /** Smallest simulated capacity in bytes (paper: 32 kB). */
    std::uint64_t minCapacityBytes = 32_KiB;
    /** Largest simulated capacity (paper: full 256 MB unit DRAM). */
    std::uint64_t maxCapacityBytes = 256_MiB;
};

/** One hardware sampler: derives the miss curve for one stream. */
class MissCurveSampler
{
  public:
    explicit MissCurveSampler(const SamplerParams& params);

    /** (Re)assign the sampler to a stream and clear its shadow sets. */
    void configure(StreamId sid, std::uint32_t granule_bytes);

    bool assigned() const { return sid_ != kNoStream; }
    StreamId sid() const { return sid_; }

    /** Observe one access to the stream (granule id in access order). */
    void observe(std::uint64_t granule_id);

    /** Accesses observed (pre-sampling). */
    std::uint64_t accesses() const { return accesses_; }

    /**
     * Build the stream's miss curve, scaled so the curve represents
     * `total_stream_accesses` accesses (the global count; this sampler saw
     * only its own unit's share of them).
     */
    MissCurve curve(std::uint64_t total_stream_accesses) const;

    const SamplerParams& params() const { return params_; }
    const std::vector<std::uint64_t>& capacities() const
    {
        return capacities_;
    }

    /** Checkpoint hooks (params/capacity points are configuration). */
    void
    serialize(ckpt::Writer& w) const
    {
        w.u32(sid_);
        w.u32(granuleBytes_);
        w.u64(cases_.size());
        for (const CapacityCase& c : cases_) {
            w.u64(c.totalSlots);
            w.u64(c.sampleStep);
            w.vecU64(c.tags);
            w.u64(c.observed);
            w.u64(c.hits);
        }
        w.u64(accesses_);
    }

    void
    deserialize(ckpt::Reader& r)
    {
        sid_ = static_cast<StreamId>(r.u32());
        granuleBytes_ = r.u32();
        // cases_ is rebuilt from the stream: its size is dynamic state
        // (empty while unassigned, one per capacity point once
        // configure() ran).
        cases_.assign(r.u64(), CapacityCase{});
        for (CapacityCase& c : cases_) {
            c.totalSlots = r.u64();
            c.sampleStep = r.u64();
            c.tags = r.vecU64();
            c.observed = r.u64();
            c.hits = r.u64();
        }
        accesses_ = r.u64();
    }

  private:
    struct CapacityCase
    {
        std::uint64_t totalSlots = 0;
        std::uint64_t sampleStep = 1; ///< slot % step == 0 is sampled
        std::vector<std::uint64_t> tags; ///< kSets single-tag shadow sets
        std::uint64_t observed = 0;
        std::uint64_t hits = 0;
    };

    SamplerParams params_;
    std::vector<std::uint64_t> capacities_; ///< geometric points
    StreamId sid_ = kNoStream;
    std::uint32_t granuleBytes_ = 0;
    std::vector<CapacityCase> cases_;
    std::uint64_t accesses_ = 0;
};

/**
 * The per-unit sampling hardware: S = 4 samplers, the 512-bit bitvector of
 * streams accessed this epoch, and per-stream access counters.
 */
class SamplerBank
{
  public:
    SamplerBank(std::uint32_t num_samplers, const SamplerParams& params);

    std::uint32_t numSamplers() const
    {
        return static_cast<std::uint32_t>(samplers_.size());
    }

    /**
     * Install the epoch's assignments: stream (and its caching granule)
     * per sampler slot; kNoStream leaves a slot idle.
     */
    void assign(const std::vector<std::pair<StreamId, std::uint32_t>>&
                    stream_granules);

    /** Record an access from this unit to `sid`. */
    void observe(StreamId sid, std::uint64_t granule_id);

    /** Streams accessed this epoch (the bitvector sent to the host). */
    const std::vector<bool>& accessedBitvector() const { return accessed_; }

    /** Per-stream access count from this unit this epoch. */
    std::uint64_t accessCount(StreamId sid) const;

    const MissCurveSampler* samplerFor(StreamId sid) const;

    /** Clear bitvector/counters for the next epoch (samplers keep state
     *  until reassigned). */
    void newEpoch();

    /** Checkpoint hooks. */
    void
    serialize(ckpt::Writer& w) const
    {
        w.u64(samplers_.size());
        for (const MissCurveSampler& s : samplers_) {
            s.serialize(w);
        }
        w.vecB(accessed_);
        w.vecU64(counts_);
    }

    void
    deserialize(ckpt::Reader& r)
    {
        const std::uint64_t n = r.u64();
        NDP_ASSERT(n == samplers_.size(), "sampler count mismatch");
        for (MissCurveSampler& s : samplers_) {
            s.deserialize(r);
        }
        accessed_ = r.vecB();
        counts_ = r.vecU64();
        NDP_ASSERT(accessed_.size() == counts_.size());
    }

  private:
    std::vector<MissCurveSampler> samplers_;
    std::vector<bool> accessed_;
    std::vector<std::uint64_t> counts_;
};

} // namespace ndpext

#endif // NDPEXT_SAMPLER_SAMPLER_H
