#include "sampler/miss_curve.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace ndpext {

MissCurve::MissCurve(std::vector<std::uint64_t> capacities,
                     std::vector<double> misses)
    : capacities_(std::move(capacities)), misses_(std::move(misses))
{
    NDP_ASSERT(capacities_.size() == misses_.size());
    for (std::size_t i = 1; i < capacities_.size(); ++i) {
        NDP_ASSERT(capacities_[i] > capacities_[i - 1],
                   "capacities must ascend");
        // Set sampling is noisy; enforce the monotonicity the model needs.
        misses_[i] = std::min(misses_[i], misses_[i - 1]);
    }
}

void
MissCurve::setZeroMisses(double misses)
{
    if (!misses_.empty() && misses < misses_.front()) {
        misses = misses_.front();
    }
    zeroMisses_ = misses;
}

double
MissCurve::missesAt(std::uint64_t capacity) const
{
    if (capacities_.empty()) {
        return 0.0;
    }
    if (capacity <= capacities_.front()) {
        if (zeroMisses_ < 0.0 || capacity >= capacities_.front()) {
            return misses_.front();
        }
        // Linear ramp from (0, zeroMisses) to the first sampled point.
        const double f = static_cast<double>(capacity)
            / static_cast<double>(capacities_.front());
        return zeroMisses_ + f * (misses_.front() - zeroMisses_);
    }
    if (capacity >= capacities_.back()) {
        return misses_.back();
    }
    const auto it = std::upper_bound(capacities_.begin(), capacities_.end(),
                                     capacity);
    const std::size_t hi = static_cast<std::size_t>(
        std::distance(capacities_.begin(), it));
    const std::size_t lo = hi - 1;
    // Linear interpolation in log-capacity (points are geometric).
    const double x = std::log2(static_cast<double>(capacity));
    const double x0 = std::log2(static_cast<double>(capacities_[lo]));
    const double x1 = std::log2(static_cast<double>(capacities_[hi]));
    const double f = (x - x0) / (x1 - x0);
    return misses_[lo] + f * (misses_[hi] - misses_[lo]);
}

std::uint64_t
MissCurve::nextPointAbove(std::uint64_t capacity) const
{
    const auto it = std::upper_bound(capacities_.begin(), capacities_.end(),
                                     capacity);
    return it == capacities_.end() ? 0 : *it;
}

MissCurve
MissCurve::pointwiseMin(const MissCurve& a, const MissCurve& b)
{
    NDP_ASSERT(a.capacities_ == b.capacities_,
               "pointwiseMin requires identical capacity points");
    std::vector<double> misses(a.misses_.size());
    for (std::size_t i = 0; i < misses.size(); ++i) {
        misses[i] = std::min(a.misses_[i], b.misses_[i]);
    }
    MissCurve out(a.capacities_, std::move(misses));
    if (a.zeroMisses_ >= 0.0 || b.zeroMisses_ >= 0.0) {
        out.setZeroMisses(std::max(a.zeroMisses_, b.zeroMisses_));
    }
    return out;
}

double
MissCurve::slopeAt(std::uint64_t capacity) const
{
    const std::uint64_t next = nextPointAbove(capacity);
    if (next == 0) {
        return 0.0;
    }
    const double gained = missesAt(capacity) - missesAt(next);
    const double bytes = static_cast<double>(next - capacity);
    return gained <= 0.0 ? 0.0 : gained / bytes;
}

MissCurve::Segment
MissCurve::bestSegment(std::uint64_t capacity) const
{
    Segment best;
    const double here = missesAt(capacity);
    const auto it = std::upper_bound(capacities_.begin(), capacities_.end(),
                                     capacity);
    for (auto p = it; p != capacities_.end(); ++p) {
        const std::size_t idx = static_cast<std::size_t>(
            std::distance(capacities_.begin(), p));
        const double gained = here - misses_[idx];
        if (gained <= 0.0) {
            continue;
        }
        const double slope = gained / static_cast<double>(*p - capacity);
        if (slope > best.slope) {
            best.slope = slope;
            best.target = *p;
        }
    }
    return best;
}

} // namespace ndpext
