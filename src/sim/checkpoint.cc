#include "sim/checkpoint.h"

#include <algorithm>
#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <fcntl.h>
#include <unistd.h>

namespace ndpext {
namespace ckpt {

namespace {

std::array<std::uint32_t, 256>
makeCrcTable()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k) {
            c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        }
        table[i] = c;
    }
    return table;
}

std::string
errnoString()
{
    return std::strerror(errno);
}

void
putU32(std::vector<std::uint8_t>& out, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

void
putU64(std::vector<std::uint8_t>& out, std::uint64_t v)
{
    for (int i = 0; i < 8; ++i) {
        out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
}

std::uint32_t
getU32(const std::uint8_t* p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    }
    return v;
}

std::uint64_t
getU64(const std::uint8_t* p)
{
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
        v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
    }
    return v;
}

constexpr std::size_t kHeaderBytes = 8 + 4 + 8 + 8 + 8 + 4;

bool
readHeaderAndMaybePayload(const std::string& path, CheckpointHeader* header,
                          std::vector<std::uint8_t>* payload,
                          std::string* error)
{
    const auto fail = [&](const std::string& why) {
        if (error != nullptr) {
            *error = "checkpoint '" + path + "': " + why;
        }
        return false;
    };

    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        return fail("cannot open: " + errnoString());
    }
    std::uint8_t head[kHeaderBytes];
    if (std::fread(head, 1, kHeaderBytes, f) != kHeaderBytes) {
        std::fclose(f);
        return fail("truncated header (file smaller than "
                    + std::to_string(kHeaderBytes) + " bytes)");
    }
    if (std::memcmp(head, kCheckpointMagic, 8) != 0) {
        std::fclose(f);
        return fail("bad magic (not a NDPXCKPT checkpoint file)");
    }
    CheckpointHeader h;
    h.version = getU32(head + 8);
    h.configHash = getU64(head + 12);
    h.epoch = getU64(head + 20);
    h.payloadSize = getU64(head + 28);
    h.payloadCrc = getU32(head + 36);
    if (h.version != kCheckpointVersion) {
        std::fclose(f);
        return fail("unsupported version " + std::to_string(h.version)
                    + " (this build reads version "
                    + std::to_string(kCheckpointVersion) + ")");
    }

    std::vector<std::uint8_t> body(h.payloadSize);
    if (h.payloadSize > 0
        && std::fread(body.data(), 1, body.size(), f) != body.size()) {
        std::fclose(f);
        return fail("truncated payload (expected "
                    + std::to_string(h.payloadSize) + " bytes)");
    }
    // Trailing garbage means the file is not the image we wrote.
    std::uint8_t extra;
    if (std::fread(&extra, 1, 1, f) == 1) {
        std::fclose(f);
        return fail("trailing bytes after payload");
    }
    std::fclose(f);

    const std::uint32_t crc = crc32(body.data(), body.size());
    if (crc != h.payloadCrc) {
        return fail("CRC mismatch (payload corrupted): stored "
                    + std::to_string(h.payloadCrc) + ", computed "
                    + std::to_string(crc));
    }
    if (header != nullptr) {
        *header = h;
    }
    if (payload != nullptr) {
        *payload = std::move(body);
    }
    return true;
}

} // namespace

std::uint32_t
crc32(const std::uint8_t* data, std::size_t size)
{
    static const std::array<std::uint32_t, 256> table = makeCrcTable();
    std::uint32_t c = 0xFFFFFFFFu;
    for (std::size_t i = 0; i < size; ++i) {
        c = table[(c ^ data[i]) & 0xFFu] ^ (c >> 8);
    }
    return c ^ 0xFFFFFFFFu;
}

std::uint64_t
fnv1a(const std::vector<std::uint8_t>& bytes)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const std::uint8_t b : bytes) {
        h ^= b;
        h *= 0x100000001b3ULL;
    }
    return h;
}

bool
saveCheckpoint(const std::string& path, std::uint64_t config_hash,
               std::uint64_t epoch, const std::vector<std::uint8_t>& payload,
               std::string* error)
{
    const auto fail = [&](const std::string& why) {
        if (error != nullptr) {
            *error = "cannot save checkpoint '" + path + "': " + why;
        }
        return false;
    };

    std::vector<std::uint8_t> image;
    image.reserve(kHeaderBytes + payload.size());
    image.insert(image.end(), kCheckpointMagic, kCheckpointMagic + 8);
    putU32(image, kCheckpointVersion);
    putU64(image, config_hash);
    putU64(image, epoch);
    putU64(image, payload.size());
    putU32(image, crc32(payload.data(), payload.size()));
    image.insert(image.end(), payload.begin(), payload.end());

    const std::string tmp = path + ".tmp";
    const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) {
        return fail("open '" + tmp + "': " + errnoString());
    }
    std::size_t off = 0;
    while (off < image.size()) {
        const ssize_t n = ::write(fd, image.data() + off, image.size() - off);
        if (n < 0) {
            ::close(fd);
            ::unlink(tmp.c_str());
            return fail("write: " + errnoString());
        }
        off += static_cast<std::size_t>(n);
    }
    if (::fsync(fd) != 0) {
        ::close(fd);
        ::unlink(tmp.c_str());
        return fail("fsync: " + errnoString());
    }
    if (::close(fd) != 0) {
        ::unlink(tmp.c_str());
        return fail("close: " + errnoString());
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        ::unlink(tmp.c_str());
        return fail("rename: " + errnoString());
    }
    return true;
}

bool
loadCheckpoint(const std::string& path, std::uint64_t expected_config_hash,
               CheckpointHeader* header, std::vector<std::uint8_t>* payload,
               std::string* error)
{
    CheckpointHeader h;
    if (!readHeaderAndMaybePayload(path, &h, payload, error)) {
        return false;
    }
    if (expected_config_hash != 0 && h.configHash != expected_config_hash) {
        if (error != nullptr) {
            *error = "checkpoint '" + path
                + "': config mismatch (checkpoint was taken with a "
                  "different system configuration, policy, workload or "
                  "fault schedule; stored hash "
                + std::to_string(h.configHash) + ", this run's hash "
                + std::to_string(expected_config_hash) + ")";
        }
        return false;
    }
    if (header != nullptr) {
        *header = h;
    }
    return true;
}

bool
probeCheckpoint(const std::string& path, CheckpointHeader* header,
                std::string* error)
{
    return readHeaderAndMaybePayload(path, header, nullptr, error);
}

bool
findLatestValidCheckpoint(const std::string& prefix, std::string* path,
                          CheckpointHeader* header, std::string* error)
{
    const auto slash = prefix.find_last_of('/');
    const std::string dir =
        slash == std::string::npos ? "." : prefix.substr(0, slash);
    const std::string base =
        slash == std::string::npos ? prefix : prefix.substr(slash + 1);

    // Collect candidate epochs from names matching <base>.<digits>.ckpt.
    std::vector<std::uint64_t> epochs;
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) {
        if (error != nullptr) {
            *error = "cannot scan checkpoint directory '" + dir
                + "': " + errnoString();
        }
        return false;
    }
    while (const dirent* ent = ::readdir(d)) {
        const std::string name = ent->d_name;
        if (name.size() <= base.size() + 6
            || name.compare(0, base.size() + 1, base + ".") != 0
            || name.compare(name.size() - 5, 5, ".ckpt") != 0) {
            continue;
        }
        const std::string mid =
            name.substr(base.size() + 1, name.size() - base.size() - 6);
        if (mid.empty()
            || mid.find_first_not_of("0123456789") != std::string::npos) {
            continue;
        }
        epochs.push_back(std::stoull(mid));
    }
    ::closedir(d);
    std::sort(epochs.rbegin(), epochs.rend());

    std::string tried;
    for (const std::uint64_t epoch : epochs) {
        const std::string candidate =
            prefix + "." + std::to_string(epoch) + ".ckpt";
        std::string why;
        if (probeCheckpoint(candidate, header, &why)) {
            if (path != nullptr) {
                *path = candidate;
            }
            return true;
        }
        tried += "\n  " + why;
    }
    if (error != nullptr) {
        *error = "no valid checkpoint matching '" + prefix
            + ".<epoch>.ckpt'" + (tried.empty() ? "" : ":" + tried);
    }
    return false;
}

} // namespace ckpt
} // namespace ndpext
