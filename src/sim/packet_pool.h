/**
 * @file
 * Slab-backed free-list allocator for Packet objects.
 *
 * The hot loop creates a Packet (with its embedded LatencyBreakdown)
 * for every L1 miss, dirty writeback and victim eviction. Those are
 * short-lived, identically-sized objects, so a pool turns each one into
 * a pointer bump (fresh) or a free-list pop (recycled) instead of stack
 * construction + copy into MSHR state.
 *
 * Ownership rules (see DESIGN.md "Engine internals"):
 *  - A pool is private to one owner (a core, a stream-cache shard
 *    context): pools are NOT thread-safe and must never be shared
 *    across shards.
 *  - acquire() returns a default-initialised live packet; release()
 *    returns it to the owner's free list. Releasing a packet twice is a
 *    hard error (NDP_ASSERT, always on).
 *  - Slabs are never freed while the pool lives, so raw Packet*
 *    handles stay valid for the owner's lifetime even while the packet
 *    is logically free (MSHR slots exploit this by keeping their packet
 *    across recycles).
 */

#ifndef NDPEXT_SIM_PACKET_POOL_H
#define NDPEXT_SIM_PACKET_POOL_H

#include <cstdint>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "sim/checkpoint.h"
#include "sim/packet.h"

namespace ndpext {

class PacketPool
{
  public:
    /** Packets per slab; slabs are allocated on demand. */
    static constexpr std::size_t kSlabPackets = 64;

    /** Get a live, default-initialised packet. */
    Packet*
    acquire()
    {
        Packet* pkt;
        if (free_ != nullptr) {
            pkt = free_;
            free_ = pkt->poolNext;
            *pkt = Packet{}; // also clears pooled/poolNext
        } else {
            if (slabUsed_ == kSlabPackets) {
                slabs_.push_back(std::make_unique<Packet[]>(kSlabPackets));
                slabUsed_ = 0;
            }
            pkt = &slabs_.back()[slabUsed_++];
            ++allocated_;
        }
        ++inUse_;
        if (inUse_ > highWater_) {
            highWater_ = inUse_;
        }
        return pkt;
    }

    /** Return a packet to the free list. Double release is fatal. */
    void
    release(Packet* pkt)
    {
        NDP_ASSERT(pkt != nullptr);
        NDP_ASSERT(!pkt->pooled, "double release of pooled packet");
        NDP_ASSERT(inUse_ > 0);
        pkt->pooled = true;
        pkt->poolNext = free_;
        free_ = pkt;
        --inUse_;
    }

    /** Live (acquired, not yet released) packets. */
    std::uint64_t inUse() const { return inUse_; }
    /** Maximum simultaneous live packets ever observed. */
    std::uint64_t highWater() const { return highWater_; }
    /** Slab objects ever constructed (recycles don't count). */
    std::uint64_t allocated() const { return allocated_; }

    /**
     * Checkpoint hooks: equivalent-state restore. Packet contents are
     * reset on acquire(), so only the allocation counters matter; the
     * restored pool holds `allocated` packets, all free. Owners that
     * keep live packets across barriers (MSHR slots) re-acquire them
     * during their own deserialize, restoring inUse without touching
     * the allocated/high-water counters.
     */
    void
    serialize(ckpt::Writer& w) const
    {
        w.u64(allocated_);
        w.u64(highWater_);
    }

    void
    deserialize(ckpt::Reader& r)
    {
        NDP_ASSERT(allocated_ == 0 && inUse_ == 0,
                   "pool restore requires a fresh pool");
        const std::uint64_t alloc = r.u64();
        highWater_ = r.u64();
        for (std::uint64_t i = 0; i < alloc; ++i) {
            if (slabUsed_ == kSlabPackets) {
                slabs_.push_back(std::make_unique<Packet[]>(kSlabPackets));
                slabUsed_ = 0;
            }
            Packet* pkt = &slabs_.back()[slabUsed_++];
            ++allocated_;
            pkt->pooled = true;
            pkt->poolNext = free_;
            free_ = pkt;
        }
    }

  private:
    Packet* free_ = nullptr;
    std::vector<std::unique_ptr<Packet[]>> slabs_;
    /** Cursor into the newest slab; == kSlabPackets when full/empty. */
    std::size_t slabUsed_ = kSlabPackets;
    std::uint64_t inUse_ = 0;
    std::uint64_t highWater_ = 0;
    std::uint64_t allocated_ = 0;
};

} // namespace ndpext

#endif // NDPEXT_SIM_PACKET_POOL_H
