#include "sim/stats.h"

namespace ndpext {

void
StatGroup::add(const std::string& name, double delta)
{
    stats_[name] += delta;
}

void
StatGroup::set(const std::string& name, double value)
{
    stats_[name] = value;
}

double
StatGroup::get(const std::string& name) const
{
    auto it = stats_.find(name);
    return it == stats_.end() ? 0.0 : it->second;
}

bool
StatGroup::has(const std::string& name) const
{
    return stats_.count(name) != 0;
}

void
StatGroup::merge(const StatGroup& other, const std::string& prefix)
{
    for (const auto& [name, value] : other.stats_) {
        stats_[prefix + "." + name] += value;
    }
}

double
StatGroup::sumPrefix(const std::string& prefix) const
{
    double total = 0.0;
    for (auto it = stats_.lower_bound(prefix); it != stats_.end(); ++it) {
        if (it->first.compare(0, prefix.size(), prefix) != 0) {
            break;
        }
        total += it->second;
    }
    return total;
}

void
StatGroup::dump(std::ostream& os) const
{
    for (const auto& [name, value] : stats_) {
        os << name << " " << value << "\n";
    }
}

} // namespace ndpext
