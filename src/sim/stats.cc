#include "sim/stats.h"

#include <cstdio>

namespace ndpext {

void
StatGroup::add(const std::string& name, double delta)
{
    stats_[name] += delta;
}

void
StatGroup::set(const std::string& name, double value)
{
    stats_[name] = value;
}

double
StatGroup::get(const std::string& name) const
{
    auto it = stats_.find(name);
    return it == stats_.end() ? 0.0 : it->second;
}

bool
StatGroup::has(const std::string& name) const
{
    return stats_.count(name) != 0;
}

void
StatGroup::merge(const StatGroup& other, const std::string& prefix)
{
    for (const auto& [name, value] : other.stats_) {
        stats_[prefix + "." + name] += value;
    }
}

void
StatGroup::absorb(const StatGroup& other)
{
    for (const auto& [name, value] : other.stats_) {
        stats_[name] += value;
    }
}

double
StatGroup::sumPrefix(const std::string& prefix) const
{
    // Segment-aware: after the prefix, only an exact match or a '.'
    // continuation counts ("unit1" must not cover "unit1x.reads").
    // A trailing '.' (or an empty prefix) means the caller already
    // delimited the segment, so plain prefix matching applies.
    const bool delimited = prefix.empty() || prefix.back() == '.';
    double total = 0.0;
    for (auto it = stats_.lower_bound(prefix); it != stats_.end(); ++it) {
        const std::string& name = it->first;
        if (name.compare(0, prefix.size(), prefix) != 0) {
            break;
        }
        if (delimited || name.size() == prefix.size()
            || name[prefix.size()] == '.') {
            total += it->second;
        }
    }
    return total;
}

void
StatGroup::dump(std::ostream& os) const
{
    for (const auto& [name, value] : stats_) {
        os << name << " " << value << "\n";
    }
}

void
StatGroup::dumpJson(std::ostream& os) const
{
    os << "{";
    bool first = true;
    for (const auto& [name, value] : stats_) {
        if (!first) {
            os << ",";
        }
        first = false;
        // Stat names are ASCII identifiers with dots; escape defensively.
        os << "\n  \"";
        for (const char c : name) {
            if (c == '"' || c == '\\') {
                os << '\\';
            }
            os << c;
        }
        os << "\": ";
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", value);
        os << buf;
    }
    os << (first ? "}" : "\n}");
}

} // namespace ndpext
