/**
 * @file
 * Contention primitives of the cycle-approximate model.
 *
 * A BandwidthResource represents anything that serializes transfers (a DRAM
 * bank data bus, an inter-stack SerDes link, the CXL port). Because one
 * access's latency chain is evaluated end-to-end, reservations arrive out
 * of simulated-time order (a miss reserves its response link far in the
 * future before another core's earlier request is seen). A scalar
 * next-free-time would turn that into phantom queueing, so reservations
 * are kept as busy *intervals* and new requests fill the earliest gap at
 * or after their arrival time.
 */

#ifndef NDPEXT_SIM_RESOURCE_H
#define NDPEXT_SIM_RESOURCE_H

#include <algorithm>
#include <cstdint>
#include <deque>

#include "common/logging.h"
#include "common/types.h"

namespace ndpext {

class BandwidthResource
{
  public:
    /**
     * @param bytes_per_cycle Service bandwidth. Fractional values are
     *        supported (e.g., 32 GB/s at 2 GHz = 16 bytes/cycle).
     */
    explicit BandwidthResource(double bytes_per_cycle = 0.0)
        : bytesPerCycle_(bytes_per_cycle)
    {
    }

    void
    setBandwidth(double bytes_per_cycle)
    {
        bytesPerCycle_ = bytes_per_cycle;
    }

    /**
     * Reserve the resource for a transfer of `bytes` arriving at `now`.
     * @return the time the transfer starts (>= now); the transfer
     *         completes at start + serviceCycles(bytes).
     */
    Cycles
    reserve(std::uint64_t bytes, Cycles now)
    {
        NDP_ASSERT(bytesPerCycle_ > 0.0, "unconfigured bandwidth resource");
        return reserveFor(serviceCycles(bytes), now);
    }

    /**
     * Occupy the resource for `duration` cycles starting at the earliest
     * gap at or after `now` (first-fit insertion into the busy list).
     */
    Cycles
    reserveFor(Cycles duration, Cycles now)
    {
        if (duration == 0) {
            duration = 1;
        }
        Cycles t = now;
        std::size_t pos = 0;
        for (; pos < busy_.size(); ++pos) {
            const Interval& iv = busy_[pos];
            if (iv.end <= t) {
                continue; // interval entirely before us
            }
            if (iv.start >= t + duration) {
                break; // we fit in the gap before this interval
            }
            t = iv.end; // collide: try right after it
        }
        // Find the sorted insertion point for (t, t+duration).
        auto it = std::lower_bound(
            busy_.begin(), busy_.end(), t,
            [](const Interval& iv, Cycles start) {
                return iv.start < start;
            });
        busy_.insert(it, Interval{t, t + duration});
        if (busy_.size() > kMaxTracked) {
            busy_.pop_front(); // oldest interval: far in the past
        }
        ++reservations_;
        queueCycles_ += t - now;
        return t;
    }

    /** Cycles to push `bytes` through the resource. */
    Cycles
    serviceCycles(std::uint64_t bytes) const
    {
        const double c = static_cast<double>(bytes) / bytesPerCycle_;
        const auto whole = static_cast<Cycles>(c);
        return whole + (static_cast<double>(whole) < c ? 1 : 0);
    }

    /** End of the latest tracked reservation. */
    Cycles
    nextFree() const
    {
        Cycles latest = 0;
        for (const auto& iv : busy_) {
            latest = std::max(latest, iv.end);
        }
        return latest;
    }

    std::uint64_t reservations() const { return reservations_; }
    Cycles totalQueueCycles() const { return queueCycles_; }

    void
    reset()
    {
        busy_.clear();
        reservations_ = 0;
        queueCycles_ = 0;
    }

  private:
    struct Interval
    {
        Cycles start;
        Cycles end;
    };

    /** Intervals kept; older ones are in the past and prunable. */
    static constexpr std::size_t kMaxTracked = 128;

    double bytesPerCycle_;
    std::deque<Interval> busy_; // sorted by start
    std::uint64_t reservations_ = 0;
    Cycles queueCycles_ = 0;
};

} // namespace ndpext

#endif // NDPEXT_SIM_RESOURCE_H
