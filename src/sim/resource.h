/**
 * @file
 * Contention primitives of the cycle-approximate model.
 *
 * A BandwidthResource represents anything that serializes transfers (a DRAM
 * bank data bus, an inter-stack SerDes link, the CXL port). Because one
 * access's latency chain is evaluated end-to-end, reservations arrive out
 * of simulated-time order (a miss reserves its response link far in the
 * future before another core's earlier request is seen). A scalar
 * next-free-time would turn that into phantom queueing, so reservations
 * are kept as busy *intervals* and new requests fill the earliest gap at
 * or after their arrival time.
 *
 * The busy list is a fixed-capacity ring of disjoint intervals sorted by
 * start time. Disjoint + sorted-by-start implies the end times are
 * strictly increasing too, so the prefix of intervals entirely before an
 * arrival is found by binary search instead of a linear walk -- this is
 * the simulator's hottest loop (every NoC inter-stack hop, DRAM bank and
 * CXL link reservation lands here). The first-fit semantics, the
 * kMaxTracked drop-oldest cap and every returned start time are exactly
 * those of the original linear implementation (pinned by the bench
 * baselines' bit-identity gate).
 */

#ifndef NDPEXT_SIM_RESOURCE_H
#define NDPEXT_SIM_RESOURCE_H

#include <cstdint>
#include <memory>

#include "common/logging.h"
#include "common/types.h"
#include "sim/checkpoint.h"

namespace ndpext {

class BandwidthResource
{
  public:
    /**
     * @param bytes_per_cycle Service bandwidth. Fractional values are
     *        supported (e.g., 32 GB/s at 2 GHz = 16 bytes/cycle).
     */
    explicit BandwidthResource(double bytes_per_cycle = 0.0)
        : bytesPerCycle_(bytes_per_cycle)
    {
    }

    BandwidthResource(const BandwidthResource& other)
        : bytesPerCycle_(other.bytesPerCycle_), head_(other.head_),
          count_(other.count_), reservations_(other.reservations_),
          queueCycles_(other.queueCycles_)
    {
        if (other.ring_ != nullptr) {
            ring_ = std::make_unique<Interval[]>(kCap);
            for (std::size_t i = 0; i < kCap; ++i) {
                ring_[i] = other.ring_[i];
            }
        }
    }

    BandwidthResource&
    operator=(const BandwidthResource& other)
    {
        if (this != &other) {
            *this = BandwidthResource(other);
        }
        return *this;
    }

    BandwidthResource(BandwidthResource&&) = default;
    BandwidthResource& operator=(BandwidthResource&&) = default;

    void
    setBandwidth(double bytes_per_cycle)
    {
        bytesPerCycle_ = bytes_per_cycle;
    }

    /**
     * Reserve the resource for a transfer of `bytes` arriving at `now`.
     * @return the time the transfer starts (>= now); the transfer
     *         completes at start + serviceCycles(bytes).
     */
    Cycles
    reserve(std::uint64_t bytes, Cycles now)
    {
        NDP_ASSERT(bytesPerCycle_ > 0.0, "unconfigured bandwidth resource");
        return reserveFor(serviceCycles(bytes), now);
    }

    /**
     * Occupy the resource for `duration` cycles starting at the earliest
     * gap at or after `now` (first-fit insertion into the busy list).
     */
    Cycles
    reserveFor(Cycles duration, Cycles now)
    {
        if (duration == 0) {
            duration = 1;
        }
        if (ring_ == nullptr) {
            ring_ = std::make_unique<Interval[]>(kCap);
        }
        Cycles t = now;
        // Ends are strictly increasing (disjoint intervals sorted by
        // start): binary-search past the prefix that is entirely before
        // the arrival, then walk the (short) run of collisions.
        std::size_t pos = firstEndAfter(now);
        for (; pos < count_; ++pos) {
            const Interval& iv = at(pos);
            if (iv.start >= t + duration) {
                break; // we fit in the gap before this interval
            }
            t = iv.end; // collide: try right after it
        }
        // Every interval before `pos` starts before `t` and every one at
        // or after it starts at `t + duration` or later, so `pos` IS the
        // sorted insertion point for (t, t + duration).
        insertAt(pos, Interval{t, t + duration});
        if (count_ > kMaxTracked) {
            popFront(); // oldest interval: far in the past
        }
        ++reservations_;
        queueCycles_ += t - now;
        return t;
    }

    /** Cycles to push `bytes` through the resource. */
    Cycles
    serviceCycles(std::uint64_t bytes) const
    {
        const double c = static_cast<double>(bytes) / bytesPerCycle_;
        const auto whole = static_cast<Cycles>(c);
        return whole + (static_cast<double>(whole) < c ? 1 : 0);
    }

    /** End of the latest tracked reservation. */
    Cycles
    nextFree() const
    {
        return count_ == 0 ? 0 : at(count_ - 1).end;
    }

    std::uint64_t reservations() const { return reservations_; }
    Cycles totalQueueCycles() const { return queueCycles_; }

    void
    reset()
    {
        head_ = 0;
        count_ = 0;
        reservations_ = 0;
        queueCycles_ = 0;
    }

    /**
     * Checkpoint hooks. The bandwidth is configuration (rebuilt by the
     * owner); only the busy list and counters travel. Intervals are
     * stored in logical order, so the restored ring is equivalent with
     * head_ = 0 regardless of the original ring phase.
     */
    void
    serialize(ckpt::Writer& w) const
    {
        w.u64(count_);
        for (std::size_t i = 0; i < count_; ++i) {
            w.u64(at(i).start);
            w.u64(at(i).end);
        }
        w.u64(reservations_);
        w.u64(queueCycles_);
    }

    void
    deserialize(ckpt::Reader& r)
    {
        reset();
        const std::uint64_t n = r.u64();
        NDP_ASSERT(n <= kMaxTracked, "bad interval count ", n);
        if (n > 0 && ring_ == nullptr) {
            ring_ = std::make_unique<Interval[]>(kCap);
        }
        for (std::uint64_t i = 0; i < n; ++i) {
            ring_[i].start = r.u64();
            ring_[i].end = r.u64();
        }
        count_ = n;
        reservations_ = r.u64();
        queueCycles_ = r.u64();
    }

  private:
    struct Interval
    {
        Cycles start;
        Cycles end;
    };

    /** Intervals kept; older ones are in the past and prunable. */
    static constexpr std::size_t kMaxTracked = 128;
    /** Ring capacity: power of two > kMaxTracked + 1 (transient size). */
    static constexpr std::size_t kCap = 256;
    static constexpr std::size_t kMask = kCap - 1;

    const Interval&
    at(std::size_t i) const
    {
        return ring_[(head_ + i) & kMask];
    }

    Interval&
    at(std::size_t i)
    {
        return ring_[(head_ + i) & kMask];
    }

    /** Index of the first interval with end > t (count_ if none). */
    std::size_t
    firstEndAfter(Cycles t) const
    {
        std::size_t lo = 0;
        std::size_t hi = count_;
        while (lo < hi) {
            const std::size_t mid = lo + (hi - lo) / 2;
            if (at(mid).end <= t) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        return lo;
    }

    /** Insert `iv` at logical index `pos`, shifting the shorter side. */
    void
    insertAt(std::size_t pos, Interval iv)
    {
        if (pos * 2 >= count_) {
            // Shift the tail [pos, count_) right by one.
            for (std::size_t i = count_; i > pos; --i) {
                at(i) = at(i - 1);
            }
        } else {
            // Shift the head [0, pos) left by one.
            head_ = (head_ + kCap - 1) & kMask;
            for (std::size_t i = 0; i < pos; ++i) {
                at(i) = at(i + 1);
            }
        }
        ++count_;
        at(pos) = iv;
    }

    void
    popFront()
    {
        head_ = (head_ + 1) & kMask;
        --count_;
    }

    double bytesPerCycle_;
    /** Disjoint busy intervals sorted by start (lazily allocated). */
    std::unique_ptr<Interval[]> ring_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
    std::uint64_t reservations_ = 0;
    Cycles queueCycles_ = 0;
};

} // namespace ndpext

#endif // NDPEXT_SIM_RESOURCE_H
