/**
 * @file
 * Lightweight hierarchical statistics registry.
 *
 * Components register named counters/scalars into a StatGroup; groups nest
 * by name ("unit3.dram.actCount"). Values are plain doubles so counters and
 * derived averages share one mechanism, in the spirit of gem5's Stats
 * package at a fraction of the machinery.
 */

#ifndef NDPEXT_SIM_STATS_H
#define NDPEXT_SIM_STATS_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace ndpext {

/** A flat, ordered map of fully-qualified stat name -> value. */
class StatGroup
{
  public:
    /** Add `delta` to the named stat (creating it at 0). */
    void add(const std::string& name, double delta);

    /** Set the named stat to an absolute value. */
    void set(const std::string& name, double value);

    /** Read a stat; returns 0 for unknown names. */
    double get(const std::string& name) const;

    /** True if the stat exists. */
    bool has(const std::string& name) const;

    /** Merge another group in, prefixing its names with `prefix.`. */
    void merge(const StatGroup& other, const std::string& prefix);

    /** Merge another group in under the same names (shard reduction). */
    void absorb(const StatGroup& other);

    /**
     * Sum of all stats under the given hierarchical prefix. The prefix
     * matches whole dot-separated segments: "unit1" covers "unit1" and
     * "unit1.dram.reads" but not "unit1x.dram.reads". A prefix ending in
     * '.' (or empty) keeps plain string-prefix semantics.
     */
    double sumPrefix(const std::string& prefix) const;

    /** Dump "name value" lines in name order. */
    void dump(std::ostream& os) const;

    /** Dump the group as one flat JSON object, keys in name order. */
    void dumpJson(std::ostream& os) const;

    void clear() { stats_.clear(); }

    const std::map<std::string, double>& raw() const { return stats_; }

  private:
    std::map<std::string, double> stats_;
};

} // namespace ndpext

#endif // NDPEXT_SIM_STATS_H
