/**
 * @file
 * Checkpoint/restore byte-stream primitives and the on-disk image format.
 *
 * A checkpoint is a versioned, CRC-checksummed binary image of all
 * deterministic simulator state, snapshotted at an epoch barrier (the
 * only point where shards are quiescent and no packet is in flight
 * between components). Components implement
 * `serialize(ckpt::Writer&)` / `deserialize(ckpt::Reader&)` hooks over
 * these primitives; `NdpSystem` orchestrates the full image.
 *
 * File layout (little-endian):
 *
 *     magic      8 B   "NDPXCKPT"
 *     version    u32   kCheckpointVersion
 *     configHash u64   hash of SystemConfig + policy + workload identity
 *     epoch      u64   completed epochs at the snapshot
 *     payload    u64   payload byte count
 *     crc32      u32   CRC-32 (IEEE) of the payload
 *     payload    ...   section-tagged component state
 *
 * Saving is crash-safe: the image is written to `<path>.tmp`, fsynced,
 * and atomically renamed over `<path>`, so a checkpoint file either does
 * not exist or is complete. Loading validates magic, version, size, CRC
 * and config hash and reports failures as recoverable errors (the file
 * is user input); *structural* mismatches after the CRC passes indicate
 * an internal bug and are asserts.
 *
 * Determinism notes: doubles are stored as raw IEEE-754 bit patterns,
 * and unordered containers are serialized in sorted key order, so a
 * byte-identical machine state always produces a byte-identical payload.
 */

#ifndef NDPEXT_SIM_CHECKPOINT_H
#define NDPEXT_SIM_CHECKPOINT_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"

namespace ndpext {
namespace ckpt {

constexpr std::uint32_t kCheckpointVersion = 2;
constexpr char kCheckpointMagic[8] = {'N', 'D', 'P', 'X',
                                      'C', 'K', 'P', 'T'};

/** CRC-32 (IEEE 802.3, reflected) of a byte range. */
std::uint32_t crc32(const std::uint8_t* data, std::size_t size);

/** Append-only little-endian byte stream. */
class Writer
{
  public:
    void
    u8(std::uint8_t v)
    {
        buf_.push_back(v);
    }

    void
    b(bool v)
    {
        u8(v ? 1 : 0);
    }

    void
    u32(std::uint32_t v)
    {
        for (int i = 0; i < 4; ++i) {
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
        }
    }

    void
    u64(std::uint64_t v)
    {
        for (int i = 0; i < 8; ++i) {
            buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
        }
    }

    /** Doubles travel as raw bit patterns: restore is bit-exact. */
    void
    d(double v)
    {
        std::uint64_t bits = 0;
        std::memcpy(&bits, &v, sizeof(bits));
        u64(bits);
    }

    void
    str(const std::string& s)
    {
        u64(s.size());
        buf_.insert(buf_.end(), s.begin(), s.end());
    }

    template <typename T, typename Fn>
    void
    vec(const std::vector<T>& v, Fn&& each)
    {
        u64(v.size());
        for (const T& e : v) {
            each(e);
        }
    }

    void
    vecU64(const std::vector<std::uint64_t>& v)
    {
        vec(v, [this](std::uint64_t e) { u64(e); });
    }

    void
    vecU32(const std::vector<std::uint32_t>& v)
    {
        vec(v, [this](std::uint32_t e) { u32(e); });
    }

    void
    vecD(const std::vector<double>& v)
    {
        vec(v, [this](double e) { d(e); });
    }

    void
    vecB(const std::vector<bool>& v)
    {
        u64(v.size());
        for (const bool e : v) {
            b(e);
        }
    }

    /**
     * Section tag: a structural marker the reader asserts on, so a
     * producer/consumer mismatch fails loudly at the divergence point
     * instead of silently misinterpreting downstream bytes.
     */
    void
    section(std::uint32_t tag)
    {
        u32(0x5EC70000u | (tag & 0xFFFFu));
    }

    const std::vector<std::uint8_t>& bytes() const { return buf_; }

  private:
    std::vector<std::uint8_t> buf_;
};

/**
 * Reader over a CRC-validated payload. Structural mismatches (overrun,
 * wrong section tag) mean the producer and consumer disagree -- an
 * internal bug, not recoverable user input -- hence asserts.
 */
class Reader
{
  public:
    explicit Reader(const std::vector<std::uint8_t>& buf)
        : data_(buf.data()), size_(buf.size())
    {
    }

    std::uint8_t
    u8()
    {
        NDP_ASSERT(pos_ + 1 <= size_, "checkpoint payload overrun");
        return data_[pos_++];
    }

    bool
    b()
    {
        return u8() != 0;
    }

    std::uint32_t
    u32()
    {
        NDP_ASSERT(pos_ + 4 <= size_, "checkpoint payload overrun");
        std::uint32_t v = 0;
        for (int i = 0; i < 4; ++i) {
            v |= static_cast<std::uint32_t>(data_[pos_++]) << (8 * i);
        }
        return v;
    }

    std::uint64_t
    u64()
    {
        NDP_ASSERT(pos_ + 8 <= size_, "checkpoint payload overrun");
        std::uint64_t v = 0;
        for (int i = 0; i < 8; ++i) {
            v |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
        }
        return v;
    }

    double
    d()
    {
        const std::uint64_t bits = u64();
        double v = 0.0;
        std::memcpy(&v, &bits, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        const std::uint64_t n = u64();
        NDP_ASSERT(pos_ + n <= size_, "checkpoint payload overrun");
        std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
        pos_ += n;
        return s;
    }

    template <typename Fn>
    void
    vec(Fn&& each)
    {
        const std::uint64_t n = u64();
        for (std::uint64_t i = 0; i < n; ++i) {
            each(i);
        }
    }

    std::vector<std::uint64_t>
    vecU64()
    {
        std::vector<std::uint64_t> v;
        vec([&](std::uint64_t) { v.push_back(u64()); });
        return v;
    }

    std::vector<std::uint32_t>
    vecU32()
    {
        std::vector<std::uint32_t> v;
        vec([&](std::uint64_t) { v.push_back(u32()); });
        return v;
    }

    std::vector<double>
    vecD()
    {
        std::vector<double> v;
        vec([&](std::uint64_t) { v.push_back(d()); });
        return v;
    }

    std::vector<bool>
    vecB()
    {
        std::vector<bool> v;
        vec([&](std::uint64_t) { v.push_back(b()); });
        return v;
    }

    void
    section(std::uint32_t tag)
    {
        const std::uint32_t got = u32();
        NDP_ASSERT(got == (0x5EC70000u | (tag & 0xFFFFu)),
                   "checkpoint section mismatch: expected tag ", tag,
                   " got word ", got);
    }

    bool atEnd() const { return pos_ == size_; }
    std::size_t pos() const { return pos_; }

  private:
    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/** Parsed checkpoint file header (everything before the payload). */
struct CheckpointHeader
{
    std::uint32_t version = 0;
    std::uint64_t configHash = 0;
    std::uint64_t epoch = 0;
    std::uint64_t payloadSize = 0;
    std::uint32_t payloadCrc = 0;
};

/**
 * Write `payload` as a complete checkpoint image via atomic
 * temp-file + fsync + rename. Returns false with a diagnostic in
 * `*error` on I/O failure (the destination is left untouched).
 */
bool saveCheckpoint(const std::string& path, std::uint64_t config_hash,
                    std::uint64_t epoch,
                    const std::vector<std::uint8_t>& payload,
                    std::string* error);

/**
 * Load and fully validate a checkpoint image: magic, version, size,
 * CRC, and (when `expected_config_hash` is nonzero) the config hash.
 * All failures are recoverable user-input errors reported in `*error`
 * with the offending file named; nothing asserts.
 */
bool loadCheckpoint(const std::string& path,
                    std::uint64_t expected_config_hash,
                    CheckpointHeader* header,
                    std::vector<std::uint8_t>* payload, std::string* error);

/**
 * Header + CRC validation only (no config hash, no payload returned):
 * the supervisor uses this to pick the newest *valid* checkpoint
 * without being able to reconstruct the config hash.
 */
bool probeCheckpoint(const std::string& path, CheckpointHeader* header,
                     std::string* error);

/**
 * Scan the directory of `prefix` for `<prefix>.<epoch>.ckpt` images and
 * return the highest-epoch one that passes full header + CRC
 * validation, silently skipping newer images that fail (a crash while
 * no checkpoint was mid-write cannot corrupt one, but disk-level damage
 * can; the supervisor falls back to the previous valid image). Returns
 * false with a diagnostic if no valid checkpoint exists.
 */
bool findLatestValidCheckpoint(const std::string& prefix,
                               std::string* path, CheckpointHeader* header,
                               std::string* error);

/** FNV-1a over a serialized byte stream (config-hash helper). */
std::uint64_t fnv1a(const std::vector<std::uint8_t>& bytes);

} // namespace ckpt
} // namespace ndpext

#endif // NDPEXT_SIM_CHECKPOINT_H
