/**
 * @file
 * Latency breakdown buckets shared by all cache-policy backends, matching
 * the categories of the paper's Fig. 2(a): metadata lookups, interconnect,
 * DRAM cache, and next-level (extended) memory. Core compute/L1 time is
 * tracked by the cores themselves.
 */

#ifndef NDPEXT_SIM_BREAKDOWN_H
#define NDPEXT_SIM_BREAKDOWN_H

#include <cstdint>
#include <string>

#include "common/types.h"
#include "sim/stats.h"

namespace ndpext {

struct LatencyBreakdown
{
    /** Metadata lookups: SLB/ATA (NDPExt) or tag metadata (baselines). */
    Cycles metadata = 0;
    /** Interconnect cycles, split by link class. */
    Cycles icnIntra = 0;
    Cycles icnInter = 0;
    /** DRAM-cache array access cycles. */
    Cycles dramCache = 0;
    /** Extended-memory (CXL + DDR5) cycles. */
    Cycles extMem = 0;
    /** Requests accounted. */
    std::uint64_t requests = 0;

    Cycles
    total() const
    {
        return metadata + icnIntra + icnInter + dramCache + extMem;
    }

    Cycles icn() const { return icnIntra + icnInter; }

    /** Accumulate another breakdown (e.g., a completed packet's). */
    void
    merge(const LatencyBreakdown& other)
    {
        metadata += other.metadata;
        icnIntra += other.icnIntra;
        icnInter += other.icnInter;
        dramCache += other.dramCache;
        extMem += other.extMem;
        requests += other.requests;
    }

    double
    avg(Cycles bucket) const
    {
        return requests == 0
            ? 0.0
            : static_cast<double>(bucket) / static_cast<double>(requests);
    }

    void
    report(StatGroup& stats, const std::string& prefix) const
    {
        stats.add(prefix + ".metadata", static_cast<double>(metadata));
        stats.add(prefix + ".icnIntra", static_cast<double>(icnIntra));
        stats.add(prefix + ".icnInter", static_cast<double>(icnInter));
        stats.add(prefix + ".dramCache", static_cast<double>(dramCache));
        stats.add(prefix + ".extMem", static_cast<double>(extMem));
        stats.add(prefix + ".requests", static_cast<double>(requests));
    }
};

} // namespace ndpext

#endif // NDPEXT_SIM_BREAKDOWN_H
