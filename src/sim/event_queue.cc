#include "sim/event_queue.h"

#include <utility>

#include "common/logging.h"

namespace ndpext {

void
EventQueue::schedule(Cycles when, Callback cb)
{
    NDP_ASSERT(when >= now_, "scheduling in the past: when=", when,
               " now=", now_);
    heap_.push(Event{when, nextSeq_++, std::move(cb)});
}

void
EventQueue::scheduleIn(Cycles delta, Callback cb)
{
    schedule(now_ + delta, std::move(cb));
}

void
EventQueue::runUntil(Cycles until)
{
    while (!heap_.empty() && heap_.top().when <= until) {
        // Copy out before pop: the callback may schedule more events.
        Event ev = heap_.top();
        heap_.pop();
        now_ = ev.when;
        ev.cb(now_);
    }
    if (until > now_) {
        now_ = until;
    }
}

void
EventQueue::runAll()
{
    while (!heap_.empty()) {
        Event ev = heap_.top();
        heap_.pop();
        now_ = ev.when;
        ev.cb(now_);
    }
}

Cycles
EventQueue::nextTick() const
{
    NDP_ASSERT(!heap_.empty());
    return heap_.top().when;
}

} // namespace ndpext
