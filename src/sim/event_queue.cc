#include "sim/event_queue.h"

#include <algorithm>
#include <bit>

#include "common/logging.h"

namespace ndpext {

EventQueue::EventNode*
EventQueue::acquireNode()
{
    if (freeNodes_ != nullptr) {
        EventNode* node = freeNodes_;
        freeNodes_ = node->next;
        node->next = nullptr;
        return node;
    }
    if (slabUsed_ == kSlabNodes) {
        slabs_.push_back(std::make_unique<EventNode[]>(kSlabNodes));
        slabUsed_ = 0;
    }
    ++nodesAllocated_;
    return &slabs_.back()[slabUsed_++];
}

void
EventQueue::releaseNode(EventNode* node)
{
    node->cb.reset();
    node->next = freeNodes_;
    freeNodes_ = node;
}

void
EventQueue::bucketAppend(EventNode* node)
{
    const std::size_t b =
        static_cast<std::size_t>(node->when & kBucketMask);
    Bucket& bucket = buckets_[b];
    node->next = nullptr;
    if (bucket.tail == nullptr) {
        bucket.head = node;
        occupied_[b >> 6] |= std::uint64_t(1) << (b & 63);
    } else {
        bucket.tail->next = node;
    }
    bucket.tail = node;
}

void
EventQueue::overflowInsert(EventNode* node)
{
    // Descending (when, seq): back() is the earliest event. Far-future
    // events are rare (epoch boundaries), so the vector insert is cold.
    auto it = std::lower_bound(
        overflow_.begin(), overflow_.end(), node,
        [](const EventNode* a, const EventNode* b) {
            return a->when != b->when ? a->when > b->when : a->seq > b->seq;
        });
    overflow_.insert(it, node);
}

void
EventQueue::migrateOverflow()
{
    while (!overflow_.empty()
           && overflow_.back()->when - now_ < kBuckets) {
        // Popping from the back walks ascending (when, seq), so each
        // tick's events enter its bucket in seq order.
        bucketAppend(overflow_.back());
        overflow_.pop_back();
    }
}

void
EventQueue::schedule(Cycles when, Callback cb)
{
    NDP_ASSERT(when >= now_, "scheduling in the past: when=", when,
               " now=", now_);
    if (when < now_) {
        when = now_; // defensive clamp (the assert above is always-on)
    }
    EventNode* node = acquireNode();
    node->when = when;
    node->seq = nextSeq_++;
    node->cb = std::move(cb);
    if (when - now_ < kBuckets) {
        bucketAppend(node);
    } else {
        overflowInsert(node);
    }
    ++size_;
    if (size_ > highWater_) {
        highWater_ = size_;
    }
}

void
EventQueue::scheduleIn(Cycles delta, Callback cb)
{
    schedule(now_ + delta, std::move(cb));
}

std::size_t
EventQueue::firstOccupied(std::size_t from) const
{
    // [from, kBuckets)
    std::size_t w = from >> 6;
    std::uint64_t bits =
        occupied_[w] & (~std::uint64_t(0) << (from & 63));
    while (true) {
        if (bits != 0) {
            return (w << 6) + static_cast<std::size_t>(
                       std::countr_zero(bits));
        }
        ++w;
        if (w == occupied_.size()) {
            break;
        }
        bits = occupied_[w];
    }
    // wrap: [0, from)
    for (w = 0; w <= (from >> 6); ++w) {
        std::uint64_t b = occupied_[w];
        if (w == (from >> 6)) {
            b &= ~(~std::uint64_t(0) << (from & 63));
        }
        if (b != 0) {
            return (w << 6)
                + static_cast<std::size_t>(std::countr_zero(b));
        }
    }
    return kBuckets;
}

Cycles
EventQueue::nextTickInternal() const
{
    // After migration, every overflow event is >= kBuckets cycles out,
    // so any wheel event beats the overflow minimum.
    if (size_ > overflow_.size()) {
        const std::size_t b =
            firstOccupied(static_cast<std::size_t>(now_ & kBucketMask));
        NDP_ASSERT(b < kBuckets);
        return buckets_[b].head->when;
    }
    return overflow_.back()->when;
}

Cycles
EventQueue::nextTick() const
{
    NDP_ASSERT(size_ > 0);
    return nextTickInternal();
}

void
EventQueue::fireOne(Cycles t)
{
    const std::size_t b = static_cast<std::size_t>(t & kBucketMask);
    Bucket& bucket = buckets_[b];
    EventNode* node = bucket.head;
    bucket.head = node->next;
    if (bucket.head == nullptr) {
        bucket.tail = nullptr;
        occupied_[b >> 6] &= ~(std::uint64_t(1) << (b & 63));
    }
    --size_;
    ++fired_;
    // Move the callback out and recycle the node before invoking: the
    // callback may schedule (and thus reuse the node) reentrantly.
    EventCallback cb = std::move(node->cb);
    releaseNode(node);
    cb(now_);
}

void
EventQueue::runUntil(Cycles until)
{
    while (size_ > 0) {
        const Cycles t = nextTickInternal();
        if (t > until) {
            break;
        }
        now_ = t;
        migrateOverflow();
        fireOne(t);
    }
    if (until > now_) {
        now_ = until;
        migrateOverflow();
    }
}

void
EventQueue::runAll()
{
    while (size_ > 0) {
        const Cycles t = nextTickInternal();
        now_ = t;
        migrateOverflow();
        fireOne(t);
    }
}

} // namespace ndpext
