/**
 * @file
 * Thread pool that runs per-stack simulation shards between epoch
 * barriers.
 *
 * forEachShard(n, fn) invokes fn(0..n-1) exactly once each and returns
 * only when all invocations are done (a barrier). Shards must touch only
 * shard-private state (see DESIGN.md section 5), so the invocation order
 * is irrelevant to the results: the same shard decomposition runs with
 * any thread count -- including 1, where everything executes inline on
 * the caller -- and produces bit-identical output.
 */

#ifndef NDPEXT_SIM_SHARDED_EXECUTOR_H
#define NDPEXT_SIM_SHARDED_EXECUTOR_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ndpext {

class ShardedExecutor
{
  public:
    /** @param threads total worker count including the caller (>= 1). */
    explicit ShardedExecutor(std::uint32_t threads);
    ~ShardedExecutor();

    ShardedExecutor(const ShardedExecutor&) = delete;
    ShardedExecutor& operator=(const ShardedExecutor&) = delete;

    /** Run fn(0..count-1), each exactly once; blocks until all done. */
    void forEachShard(std::size_t count,
                      const std::function<void(std::size_t)>& fn);

    std::uint32_t threads() const
    {
        return static_cast<std::uint32_t>(workers_.size()) + 1;
    }

  private:
    void workerLoop();
    void runJob();

    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable jobReady_;
    std::condition_variable jobDone_;
    std::uint64_t generation_ = 0;
    bool stop_ = false;

    const std::function<void(std::size_t)>* job_ = nullptr;
    std::size_t count_ = 0;
    std::atomic<std::size_t> next_{0};
    std::atomic<std::size_t> done_{0};
};

} // namespace ndpext

#endif // NDPEXT_SIM_SHARDED_EXECUTOR_H
