/**
 * @file
 * The unit of communication between memory-system components.
 *
 * A Packet is created at the L1-miss point and threaded through the
 * port graph (core -> controller -> NoC -> DRAM / extended memory).
 * Components operate in atomic mode: recvAtomic() advances the packet's
 * `ready` time and charges the elapsed cycles to the matching bucket of
 * the packet's accumulating LatencyBreakdown, so the requester ends up
 * with both the completion time and the Fig. 2(a)-style attribution of
 * where those cycles went. This mirrors gem5's packet/port protocol,
 * restricted to the atomic timing mode this simulator needs.
 */

#ifndef NDPEXT_SIM_PACKET_H
#define NDPEXT_SIM_PACKET_H

#include <cstdint>

#include "common/types.h"
#include "sim/breakdown.h"

namespace ndpext {

enum class MemOp : std::uint8_t
{
    Read,
    Write,
    /** Non-blocking dirty-line eviction; no response expected. */
    Writeback,
};

struct Packet
{
    Addr addr = 0;
    std::uint32_t bytes = kCachelineBytes;
    MemOp op = MemOp::Read;

    /** Stream identity (kNoStream for non-stream traffic). */
    StreamId sid = kNoStream;
    ElemId elem = 0;

    /** Requesting core. */
    CoreId src = 0;

    /**
     * Current interconnect leg, consumed by NocModel::recvAtomic.
     * kCxlEndpoint as either end addresses the CXL portal.
     */
    UnitId hopSrc = kNoUnit;
    UnitId hopDst = kNoUnit;

    /** The packet's current simulated time; components advance it. */
    Cycles ready = 0;

    /** Accumulated per-bucket latency along the packet's path. */
    LatencyBreakdown bd;

    /** Set by ExtendedMemory when a read returned a poisoned line. */
    bool poisoned = false;

    /**
     * Intrusive PacketPool hooks (sim/packet_pool.h): the free-list
     * link threads released packets without any side allocation, and
     * `pooled` marks a packet currently sitting in the free list so a
     * double release is caught at the release point.
     */
    Packet* poolNext = nullptr;
    bool pooled = false;

    /** Sentinel unit id addressing the CXL attach point. */
    static constexpr UnitId kCxlEndpoint = kNoUnit - 1;

    bool isWrite() const { return op != MemOp::Read; }

    static Packet
    request(const Access& acc, CoreId core, Cycles now)
    {
        Packet pkt;
        pkt.addr = acc.addr;
        pkt.bytes = acc.size;
        pkt.op = acc.isWrite ? MemOp::Write : MemOp::Read;
        pkt.sid = acc.sid;
        pkt.elem = acc.elem;
        pkt.src = core;
        pkt.ready = now;
        return pkt;
    }

    static Packet
    writeback(Addr line_addr, CoreId core, Cycles now)
    {
        Packet pkt;
        pkt.addr = line_addr;
        pkt.bytes = kCachelineBytes;
        pkt.op = MemOp::Writeback;
        pkt.src = core;
        pkt.ready = now;
        return pkt;
    }
};

} // namespace ndpext

#endif // NDPEXT_SIM_PACKET_H
