#include "sim/sharded_executor.h"

namespace ndpext {

ShardedExecutor::ShardedExecutor(std::uint32_t threads)
{
    // The caller participates in every job, so spawn threads-1 workers.
    for (std::uint32_t i = 1; i < threads; ++i) {
        workers_.emplace_back([this] { workerLoop(); });
    }
}

ShardedExecutor::~ShardedExecutor()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stop_ = true;
    }
    jobReady_.notify_all();
    for (std::thread& worker : workers_) {
        worker.join();
    }
}

void
ShardedExecutor::forEachShard(std::size_t count,
                              const std::function<void(std::size_t)>& fn)
{
    if (count == 0) {
        return;
    }
    if (workers_.empty() || count == 1) {
        for (std::size_t i = 0; i < count; ++i) {
            fn(i);
        }
        return;
    }
    {
        std::lock_guard<std::mutex> lock(mutex_);
        job_ = &fn;
        count_ = count;
        next_.store(0, std::memory_order_relaxed);
        done_.store(0, std::memory_order_relaxed);
        ++generation_;
    }
    jobReady_.notify_all();
    runJob();
    std::unique_lock<std::mutex> lock(mutex_);
    jobDone_.wait(lock, [this] {
        return done_.load(std::memory_order_acquire) == count_;
    });
    job_ = nullptr;
}

void
ShardedExecutor::runJob()
{
    while (true) {
        const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
        if (i >= count_) {
            break;
        }
        (*job_)(i);
        if (done_.fetch_add(1, std::memory_order_acq_rel) + 1 == count_) {
            std::lock_guard<std::mutex> lock(mutex_);
            jobDone_.notify_all();
        }
    }
}

void
ShardedExecutor::workerLoop()
{
    std::uint64_t seen = 0;
    while (true) {
        {
            std::unique_lock<std::mutex> lock(mutex_);
            jobReady_.wait(lock, [this, seen] {
                return stop_ || generation_ != seen;
            });
            if (stop_) {
                return;
            }
            seen = generation_;
        }
        runJob();
    }
}

} // namespace ndpext
