/**
 * @file
 * Discrete-event queue driving epoch-level simulation control.
 *
 * Memory accesses themselves are evaluated analytically (see DESIGN.md
 * section 4.1); the event queue sequences coarse events: epoch boundaries,
 * runtime reconfigurations, and workload phase changes.
 *
 * Implementation (see DESIGN.md "Engine internals"): a two-level
 * calendar queue. Events within kBuckets cycles of now() live in a
 * 256-bucket wheel indexed by `when & (kBuckets - 1)`; because the
 * window is exactly kBuckets wide, a bucket holds events of exactly one
 * tick and same-tick FIFO order is plain tail-append. Farther events
 * wait in a sorted far-future overflow list and migrate into the wheel
 * as now() advances. Event nodes are slab-pooled and callbacks use a
 * small-buffer-optimised EventCallback instead of std::function, so the
 * schedule/fire cycle allocates nothing in steady state. Firing order
 * is exactly the old binary heap's (when, seq) order, so simulation
 * results are unchanged.
 */

#ifndef NDPEXT_SIM_EVENT_QUEUE_H
#define NDPEXT_SIM_EVENT_QUEUE_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/types.h"

namespace ndpext {

/**
 * Move-only callable taking (Cycles now), with a 48-byte inline buffer.
 * Small lambdas (the only kind the simulator schedules) are stored in
 * place; larger ones fall back to the heap. A static per-type vtable
 * provides invoke/destroy/relocate.
 */
class EventCallback
{
  public:
    EventCallback() = default;

    template <typename F,
              typename = std::enable_if_t<
                  !std::is_same_v<std::decay_t<F>, EventCallback>>>
    EventCallback(F&& f) // NOLINT: implicit from any callable, like
                         // std::function
    {
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineSize
                      && alignof(Fn) <= alignof(std::max_align_t)
                      && std::is_nothrow_move_constructible_v<Fn>) {
            ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
            vt_ = &kInlineVt<Fn>;
        } else {
            heap_ = new Fn(std::forward<F>(f));
            vt_ = &kHeapVt<Fn>;
        }
    }

    EventCallback(EventCallback&& other) noexcept { moveFrom(other); }

    EventCallback&
    operator=(EventCallback&& other) noexcept
    {
        if (this != &other) {
            reset();
            moveFrom(other);
        }
        return *this;
    }

    EventCallback(const EventCallback&) = delete;
    EventCallback& operator=(const EventCallback&) = delete;

    ~EventCallback() { reset(); }

    explicit operator bool() const { return vt_ != nullptr; }

    void operator()(Cycles now) { vt_->invoke(object(), now); }

    void
    reset()
    {
        if (vt_ != nullptr) {
            vt_->destroy(object());
            vt_ = nullptr;
            heap_ = nullptr;
        }
    }

  private:
    static constexpr std::size_t kInlineSize = 48;

    struct VTable
    {
        void (*invoke)(void* obj, Cycles now);
        void (*destroy)(void* obj);
        /** Move from -> to and destroy from; null for heap storage. */
        void (*relocate)(void* from, void* to);
    };

    template <typename Fn>
    static void
    invokeImpl(void* obj, Cycles now)
    {
        (*static_cast<Fn*>(obj))(now);
    }

    template <typename Fn>
    static void
    destroyInline(void* obj)
    {
        static_cast<Fn*>(obj)->~Fn();
    }

    template <typename Fn>
    static void
    destroyHeap(void* obj)
    {
        delete static_cast<Fn*>(obj);
    }

    template <typename Fn>
    static void
    relocateImpl(void* from, void* to)
    {
        Fn* src = static_cast<Fn*>(from);
        ::new (to) Fn(std::move(*src));
        src->~Fn();
    }

    template <typename Fn>
    static constexpr VTable kInlineVt{&invokeImpl<Fn>, &destroyInline<Fn>,
                                      &relocateImpl<Fn>};
    template <typename Fn>
    static constexpr VTable kHeapVt{&invokeImpl<Fn>, &destroyHeap<Fn>,
                                    nullptr};

    void*
    object()
    {
        return vt_->relocate != nullptr ? static_cast<void*>(buf_) : heap_;
    }

    void
    moveFrom(EventCallback& other) noexcept
    {
        vt_ = other.vt_;
        if (vt_ == nullptr) {
            return;
        }
        if (vt_->relocate != nullptr) {
            vt_->relocate(other.buf_, buf_);
        } else {
            heap_ = other.heap_;
            other.heap_ = nullptr;
        }
        other.vt_ = nullptr;
    }

    alignas(std::max_align_t) unsigned char buf_[kInlineSize];
    void* heap_ = nullptr;
    const VTable* vt_ = nullptr;
};

/** Calendar queue of (tick, seq, callback) events; min-(when, seq). */
class EventQueue
{
  public:
    using Callback = EventCallback;

    /** Wheel width: the near window is [now, now + kBuckets). */
    static constexpr std::size_t kBuckets = 256;

    EventQueue() = default;
    EventQueue(const EventQueue&) = delete;
    EventQueue& operator=(const EventQueue&) = delete;

    /** Schedule `cb` at absolute time `when` (>= now). */
    void schedule(Cycles when, Callback cb);

    /** Schedule `cb` `delta` cycles from now. */
    void scheduleIn(Cycles delta, Callback cb);

    /** Fire all events with tick <= `until`; advances now() to `until`. */
    void runUntil(Cycles until);

    /** Fire everything; advances now() to the last event's tick. */
    void runAll();

    Cycles now() const { return now_; }

    bool empty() const { return size_ == 0; }
    std::size_t size() const { return size_; }

    /** Tick of the earliest pending event; only valid if !empty(). */
    Cycles nextTick() const;

    // --- engine telemetry ---
    /** Events fired over the queue's lifetime. */
    std::uint64_t eventsFired() const { return fired_; }
    /** Maximum simultaneously pending events ever observed. */
    std::uint64_t highWater() const { return highWater_; }
    /** Event nodes ever slab-allocated (recycles don't count). */
    std::uint64_t nodesAllocated() const { return nodesAllocated_; }

  private:
    struct EventNode
    {
        Cycles when = 0;
        std::uint64_t seq = 0; // FIFO tie-break for same-tick events
        EventNode* next = nullptr;
        EventCallback cb;
    };

    struct Bucket
    {
        EventNode* head = nullptr;
        EventNode* tail = nullptr;
    };

    static constexpr Cycles kBucketMask = kBuckets - 1;
    static constexpr std::size_t kSlabNodes = 64;

    EventNode* acquireNode();
    void releaseNode(EventNode* node);

    /** Tail-append into the wheel bucket of node->when (in-window). */
    void bucketAppend(EventNode* node);

    /** Sorted insert into the far-future list (descending (when, seq),
     *  so back() is the minimum). */
    void overflowInsert(EventNode* node);

    /** Pull every overflow event that entered the window into the
     *  wheel; must run on every now_ advance so a tick's far-scheduled
     *  events precede later same-tick near schedules (FIFO proof in
     *  DESIGN.md). */
    void migrateOverflow();

    /** Bucket index of the first occupied bucket starting at `from`
     *  (wrapping); kBuckets when the wheel is empty. */
    std::size_t firstOccupied(std::size_t from) const;

    /** Earliest pending (when); size_ > 0 required. */
    Cycles nextTickInternal() const;

    /** Detach and fire the head event of tick `t`'s bucket. */
    void fireOne(Cycles t);

    std::array<Bucket, kBuckets> buckets_{};
    /** Occupancy bitmap over buckets (bit b <=> bucket b non-empty). */
    std::array<std::uint64_t, kBuckets / 64> occupied_{};
    /** Far-future events, sorted descending by (when, seq). */
    std::vector<EventNode*> overflow_;

    std::vector<std::unique_ptr<EventNode[]>> slabs_;
    std::size_t slabUsed_ = kSlabNodes;
    EventNode* freeNodes_ = nullptr;

    Cycles now_ = 0;
    std::uint64_t nextSeq_ = 0;
    std::size_t size_ = 0;
    std::uint64_t fired_ = 0;
    std::uint64_t highWater_ = 0;
    std::uint64_t nodesAllocated_ = 0;
};

} // namespace ndpext

#endif // NDPEXT_SIM_EVENT_QUEUE_H
