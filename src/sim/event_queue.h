/**
 * @file
 * Discrete-event queue driving epoch-level simulation control.
 *
 * Memory accesses themselves are evaluated analytically (see DESIGN.md
 * section 4.1); the event queue sequences coarse events: epoch boundaries,
 * runtime reconfigurations, and workload phase changes.
 */

#ifndef NDPEXT_SIM_EVENT_QUEUE_H
#define NDPEXT_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/types.h"

namespace ndpext {

/** Min-heap of (tick, seq, callback) events. */
class EventQueue
{
  public:
    using Callback = std::function<void(Cycles now)>;

    /** Schedule `cb` at absolute time `when` (>= now). */
    void schedule(Cycles when, Callback cb);

    /** Schedule `cb` `delta` cycles from now. */
    void scheduleIn(Cycles delta, Callback cb);

    /** Fire all events with tick <= `until`; advances now() to `until`. */
    void runUntil(Cycles until);

    /** Fire everything; advances now() to the last event's tick. */
    void runAll();

    Cycles now() const { return now_; }

    bool empty() const { return heap_.empty(); }
    std::size_t size() const { return heap_.size(); }

    /** Tick of the earliest pending event; only valid if !empty(). */
    Cycles nextTick() const;

  private:
    struct Event
    {
        Cycles when;
        std::uint64_t seq; // FIFO tie-break for same-tick events
        Callback cb;
    };
    struct Later
    {
        bool
        operator()(const Event& a, const Event& b) const
        {
            return a.when != b.when ? a.when > b.when : a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    Cycles now_ = 0;
    std::uint64_t nextSeq_ = 0;
};

} // namespace ndpext

#endif // NDPEXT_SIM_EVENT_QUEUE_H
