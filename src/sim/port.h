/**
 * @file
 * gem5-style port plumbing (atomic mode only).
 *
 * A MemPort is the response side: a component implements recvAtomic() to
 * service a packet, advancing its time and latency breakdown. A
 * RequestPort is the request side: it binds to exactly one MemPort and
 * forwards packets to it. MemObject is the common base for components
 * that expose named response ports, so systems wire the machine by name
 * ("cpu_side", "in") instead of passing concrete references around.
 *
 * Binding is done once at construction time by the system (NdpSystem /
 * HostSystem / test rigs); sending through an unbound port is a
 * programming error and panics.
 *
 * Hot-path convention: because bindings are fixed for a run, components
 * on the miss path may additionally hold a concrete pointer to their
 * peer model and call its recvAtomic() directly (see ShardCtx::noc/ext
 * in ndp/stream_cache.h), skipping the RequestPort -> virtual MemPort
 * double dispatch. The port stays bound as the authoritative wiring
 * record; port adapters are marked `final` so direct calls can inline.
 */

#ifndef NDPEXT_SIM_PORT_H
#define NDPEXT_SIM_PORT_H

#include <string>
#include <utility>

#include "common/logging.h"
#include "sim/packet.h"

namespace ndpext {

class MetricRegistry; // telemetry/metric_registry.h

/** Response side of a connection: services packets atomically. */
class MemPort
{
  public:
    explicit MemPort(std::string name) : name_(std::move(name)) {}
    virtual ~MemPort() = default;

    /** Service `pkt` now; advances pkt.ready and charges pkt.bd. */
    virtual void recvAtomic(Packet& pkt) = 0;

    const std::string& name() const { return name_; }

  private:
    std::string name_;
};

/** Request side: forwards packets to the bound response port. */
class RequestPort
{
  public:
    explicit RequestPort(std::string name) : name_(std::move(name)) {}

    void
    bind(MemPort& peer)
    {
        peer_ = &peer;
    }

    bool bound() const { return peer_ != nullptr; }
    MemPort* peer() const { return peer_; }

    void
    sendAtomic(Packet& pkt)
    {
        NDP_ASSERT(peer_ != nullptr, "send through unbound port ", name_);
        peer_->recvAtomic(pkt);
    }

    const std::string& name() const { return name_; }

  private:
    std::string name_;
    MemPort* peer_ = nullptr;
};

/** A component that exposes named response ports. */
class MemObject
{
  public:
    explicit MemObject(std::string name) : name_(std::move(name)) {}
    virtual ~MemObject() = default;

    const std::string& objName() const { return name_; }

    /** Look up a response port; panics on unknown names. */
    MemPort&
    port(const std::string& port_name)
    {
        MemPort* p = getPort(port_name);
        NDP_ASSERT(p != nullptr, "object ", name_, " has no port '",
                   port_name, "'");
        return *p;
    }

    /**
     * Register this object's observable counters/gauges into a telemetry
     * MetricRegistry (pull-mode; observer-only -- see telemetry.h). The
     * default registers nothing. Shard-cloned objects registering under
     * the same names are summed by the registry.
     */
    virtual void registerMetrics(MetricRegistry& registry)
    {
        (void)registry;
    }

  protected:
    /** Resolve a port name to a member port; nullptr if unknown. */
    virtual MemPort* getPort(const std::string& port_name) = 0;

  private:
    std::string name_;
};

} // namespace ndpext

#endif // NDPEXT_SIM_PORT_H
