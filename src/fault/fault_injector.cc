#include "fault/fault_injector.h"

#include <algorithm>
#include <cctype>

#include "common/logging.h"

namespace ndpext {

namespace {

/** Parse "5M" / "200K" / "1G" / "12345" into a cycle count. */
bool
parseCycles(const std::string& text, Cycles* out)
{
    if (text.empty()) {
        return false;
    }
    std::uint64_t mult = 1;
    std::string digits = text;
    switch (std::toupper(static_cast<unsigned char>(text.back()))) {
      case 'K':
        mult = 1'000;
        digits.pop_back();
        break;
      case 'M':
        mult = 1'000'000;
        digits.pop_back();
        break;
      case 'G':
        mult = 1'000'000'000;
        digits.pop_back();
        break;
      default:
        break;
    }
    if (digits.empty()
        || digits.find_first_not_of("0123456789") != std::string::npos) {
        return false;
    }
    try {
        *out = std::stoull(digits) * mult;
    } catch (const std::exception&) {
        return false;
    }
    return true;
}

bool
parseProb(const std::string& text, double* out)
{
    if (text.rfind("p=", 0) != 0) {
        return false;
    }
    try {
        std::size_t used = 0;
        const double p = std::stod(text.substr(2), &used);
        if (used != text.size() - 2 || p < 0.0 || p > 1.0) {
            return false;
        }
        *out = p;
    } catch (const std::exception&) {
        return false;
    }
    return true;
}

bool
parseId(const std::string& text, std::uint32_t* out)
{
    if (text.empty()
        || text.find_first_not_of("0123456789") != std::string::npos) {
        return false;
    }
    try {
        const unsigned long v = std::stoul(text);
        *out = static_cast<std::uint32_t>(v);
    } catch (const std::exception&) {
        return false;
    }
    return true;
}

bool
fail(std::string* error, const std::string& msg)
{
    if (error != nullptr) {
        *error = msg;
    }
    return false;
}

} // namespace

bool
parseFaultSpec(const std::string& spec, std::uint32_t units_per_stack,
               FaultParams& params, std::string* error)
{
    const auto colon = spec.find(':');
    if (colon == std::string::npos || colon + 1 >= spec.size()) {
        return fail(error, "fault spec '" + spec
                               + "' has no ':<arg>' part");
    }
    const std::string kind = spec.substr(0, colon);
    const std::string arg = spec.substr(colon + 1);

    if (kind == "unit" || kind == "stack") {
        const auto at = arg.find('@');
        if (at == std::string::npos) {
            return fail(error, "fault spec '" + spec
                                   + "': expected " + kind
                                   + ":<id>@<cycle>");
        }
        std::uint32_t id = 0;
        Cycles when = 0;
        if (!parseId(arg.substr(0, at), &id)) {
            return fail(error, "fault spec '" + spec + "': bad " + kind
                                   + " id '" + arg.substr(0, at) + "'");
        }
        if (!parseCycles(arg.substr(at + 1), &when)) {
            return fail(error, "fault spec '" + spec + "': bad cycle '"
                                   + arg.substr(at + 1)
                                   + "' (want digits with optional"
                                     " K/M/G suffix)");
        }
        if (kind == "unit") {
            params.unitFailures.push_back(UnitFailure{id, when});
        } else {
            if (units_per_stack == 0) {
                return fail(error, "fault spec '" + spec
                                       + "': stack faults not supported"
                                         " here");
            }
            for (std::uint32_t u = 0; u < units_per_stack; ++u) {
                params.unitFailures.push_back(
                    UnitFailure{id * units_per_stack + u, when});
            }
        }
        return true;
    }

    double* target = nullptr;
    if (kind == "cxl-transient") {
        target = &params.cxlTransientProb;
    } else if (kind == "cxl-poison") {
        target = &params.cxlPoisonProb;
    } else if (kind == "dram-bit") {
        target = &params.dramBitProb;
    } else {
        return fail(error, "unknown fault kind '" + kind
                               + "' (want unit, stack, cxl-transient,"
                                 " cxl-poison, or dram-bit)");
    }
    if (!parseProb(arg, target)) {
        return fail(error, "fault spec '" + spec
                               + "': expected p=<prob in [0,1]>");
    }
    return true;
}

FaultInjector::FaultInjector(const FaultParams& params)
    : params_(params), linkRng_(mix64(params.seed ^ 0x11ec7)),
      poisonRng_(mix64(params.seed ^ 0x905071)),
      dramRng_(mix64(params.seed ^ 0xd7a3))
{
    std::stable_sort(params_.unitFailures.begin(),
                     params_.unitFailures.end(),
                     [](const UnitFailure& a, const UnitFailure& b) {
                         return a.at < b.at;
                     });
}

bool
FaultInjector::linkError()
{
    if (params_.cxlTransientProb <= 0.0) {
        return false;
    }
    if (!linkRng_.nextBool(params_.cxlTransientProb)) {
        return false;
    }
    ++linkErrors_;
    return true;
}

bool
FaultInjector::poisonRead(Addr addr)
{
    const Addr line = addr / kCachelineBytes;
    if (poisonedLines_.count(line) != 0) {
        return true;
    }
    if (params_.cxlPoisonProb <= 0.0
        || !poisonRng_.nextBool(params_.cxlPoisonProb)) {
        return false;
    }
    poisonedLines_.insert(line);
    ++linesPoisoned_;
    return true;
}

bool
FaultInjector::isPoisoned(Addr addr) const
{
    return poisonedLines_.count(addr / kCachelineBytes) != 0;
}

bool
FaultInjector::dramBitFault()
{
    if (params_.dramBitProb <= 0.0
        || !dramRng_.nextBool(params_.dramBitProb)) {
        return false;
    }
    ++dramFaults_;
    return true;
}

Cycles
FaultInjector::nextFailureAt() const
{
    return nextFailure_ < params_.unitFailures.size()
        ? params_.unitFailures[nextFailure_].at
        : kNoFailure;
}

std::vector<UnitId>
FaultInjector::popFailuresUpTo(Cycles now)
{
    std::vector<UnitId> fired;
    while (nextFailure_ < params_.unitFailures.size()
           && params_.unitFailures[nextFailure_].at <= now) {
        const UnitFailure& f = params_.unitFailures[nextFailure_++];
        if (failed_.insert(f.unit).second) {
            fired.push_back(f.unit);
            firstFailureAt_ = std::min(firstFailureAt_, f.at);
        }
    }
    return fired;
}

bool
FaultInjector::unitFailed(UnitId unit) const
{
    return failed_.count(unit) != 0;
}

void
FaultInjector::report(StatGroup& stats, const std::string& prefix) const
{
    stats.add(prefix + ".linkErrorsInjected",
              static_cast<double>(linkErrors_));
    stats.add(prefix + ".linesPoisoned",
              static_cast<double>(linesPoisoned_));
    stats.add(prefix + ".dramBitFaultsInjected",
              static_cast<double>(dramFaults_));
    stats.add(prefix + ".failedUnits",
              static_cast<double>(failed_.size()));
}

} // namespace ndpext
