/**
 * @file
 * Deterministic, seeded fault injection (the degraded-mode test harness).
 *
 * Real CXL.mem expanders must survive link errors and media poison, and a
 * co-located placement scheme must survive the death of a unit it placed
 * data on. The injector models three fault classes:
 *
 *  - CXL transient link errors: per-access Bernoulli draws; the endpoint
 *    retries with capped exponential backoff (each retry re-occupies link
 *    bandwidth and pays link latency again).
 *  - CXL media poison: per-read Bernoulli draws that permanently poison
 *    the touched cacheline; later reads of the line return poison and
 *    escalate to the runtime.
 *  - Whole-NDP-unit failures: schedule-driven (unit U dies at cycle N).
 *    The unit's DRAM-cache slice, tag stores and samplers become
 *    unusable; the runtime reconfigures around it out-of-epoch.
 *  - Transient DRAM bit faults in the stream cache: per-hit Bernoulli
 *    draws modelling an ECC-detected error; the granule is re-fetched
 *    from extended memory.
 *
 * All draws come from seeded xoshiro256** streams (one per fault class,
 * so enabling one class does not perturb another), making every faulty
 * run exactly reproducible: same spec + seed => identical stats.
 */

#ifndef NDPEXT_FAULT_FAULT_INJECTOR_H
#define NDPEXT_FAULT_FAULT_INJECTOR_H

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "sim/checkpoint.h"
#include "sim/stats.h"

namespace ndpext {

/** One scheduled whole-unit failure. */
struct UnitFailure
{
    UnitId unit = kNoUnit;
    Cycles at = 0;
};

struct FaultParams
{
    std::uint64_t seed = 1;
    /** Per-access probability of a transient CXL link error. */
    double cxlTransientProb = 0.0;
    /** Per-read probability of (newly) poisoning the touched line. */
    double cxlPoisonProb = 0.0;
    /** Per-cache-hit probability of an ECC-detected DRAM bit fault. */
    double dramBitProb = 0.0;
    /** Scheduled unit failures (kept sorted by cycle by the injector). */
    std::vector<UnitFailure> unitFailures;
    /** Transient-error retries before the endpoint gives up recovering. */
    std::uint32_t maxLinkRetries = 4;
    /** Backoff before retry r is base << (r-1), capped below. */
    Cycles retryBackoffCycles = 64;
    Cycles retryBackoffCapCycles = 4096;
    /** Host-visible penalty for a poison escalation. */
    Cycles poisonPenaltyCycles = 2000;

    bool
    anyFaults() const
    {
        return cxlTransientProb > 0.0 || cxlPoisonProb > 0.0
            || dramBitProb > 0.0 || !unitFailures.empty();
    }
};

/**
 * Parse one --fault=SPEC value into `params`. Accepted specs:
 *
 *   unit:<id>@<cycle>       whole-unit failure (cycle takes K/M/G suffix)
 *   stack:<id>@<cycle>      expands to unit failures via units-per-stack
 *                           (resolved by the caller through stackUnits)
 *   cxl-transient:p=<prob>  transient link-error probability
 *   cxl-poison:p=<prob>     media-poison probability
 *   dram-bit:p=<prob>       stream-cache bit-fault probability
 *
 * @param units_per_stack needed only for stack:...; pass 0 to reject
 *        stack specs.
 * @return false and set *error on malformed input.
 */
bool parseFaultSpec(const std::string& spec, std::uint32_t units_per_stack,
                    FaultParams& params, std::string* error);

class FaultInjector
{
  public:
    explicit FaultInjector(const FaultParams& params = FaultParams{});

    const FaultParams& params() const { return params_; }
    bool enabled() const { return params_.anyFaults(); }

    // --- per-access Bernoulli draws (deterministic in call order) ---

    /** Transient CXL link error on this transfer attempt? */
    bool linkError();

    /**
     * Media-poison check for a read of `addr`: returns true if the line
     * is already poisoned or the draw poisons it now (sticky).
     */
    bool poisonRead(Addr addr);

    /** True if the line holding `addr` has been poisoned. */
    bool isPoisoned(Addr addr) const;

    /** ECC-detected bit fault on this stream-cache hit? */
    bool dramBitFault();

    // --- scheduled unit failures ---

    /** Cycle of the next not-yet-fired failure; kNoFailure if none. */
    static constexpr Cycles kNoFailure = ~static_cast<Cycles>(0);
    Cycles nextFailureAt() const;

    /** Pop (fire) all scheduled failures with `at <= now`. */
    std::vector<UnitId> popFailuresUpTo(Cycles now);

    /** Has `unit` been failed (fired) already? */
    bool unitFailed(UnitId unit) const;

    std::uint32_t failedUnitCount() const
    {
        return static_cast<std::uint32_t>(failed_.size());
    }

    /** Cycle of the earliest *fired* failure; kNoFailure if none yet. */
    Cycles firstFailureAt() const { return firstFailureAt_; }

    // --- counters ---
    std::uint64_t linkErrorsInjected() const { return linkErrors_; }
    std::uint64_t linesPoisoned() const { return linesPoisoned_; }
    std::uint64_t dramBitFaultsInjected() const { return dramFaults_; }

    void report(StatGroup& stats, const std::string& prefix) const;

    /**
     * Checkpoint hooks. The schedule itself is configuration; RNG
     * streams, the fired/poisoned sets (sorted for byte determinism)
     * and the schedule cursor travel.
     */
    void
    serialize(ckpt::Writer& w) const
    {
        std::uint64_t s[4];
        linkRng_.state(s);
        for (int i = 0; i < 4; ++i) {
            w.u64(s[i]);
        }
        poisonRng_.state(s);
        for (int i = 0; i < 4; ++i) {
            w.u64(s[i]);
        }
        dramRng_.state(s);
        for (int i = 0; i < 4; ++i) {
            w.u64(s[i]);
        }
        std::vector<std::uint64_t> lines(poisonedLines_.begin(),
                                         poisonedLines_.end());
        std::sort(lines.begin(), lines.end());
        w.vecU64(lines);
        std::vector<std::uint32_t> failed(failed_.begin(), failed_.end());
        std::sort(failed.begin(), failed.end());
        w.vecU32(failed);
        w.u64(nextFailure_);
        w.u64(firstFailureAt_);
        w.u64(linkErrors_);
        w.u64(linesPoisoned_);
        w.u64(dramFaults_);
    }

    void
    deserialize(ckpt::Reader& r)
    {
        std::uint64_t s[4];
        for (int i = 0; i < 4; ++i) {
            s[i] = r.u64();
        }
        linkRng_.setState(s);
        for (int i = 0; i < 4; ++i) {
            s[i] = r.u64();
        }
        poisonRng_.setState(s);
        for (int i = 0; i < 4; ++i) {
            s[i] = r.u64();
        }
        dramRng_.setState(s);
        poisonedLines_.clear();
        for (const std::uint64_t line : r.vecU64()) {
            poisonedLines_.insert(line);
        }
        failed_.clear();
        for (const std::uint32_t unit : r.vecU32()) {
            failed_.insert(static_cast<UnitId>(unit));
        }
        nextFailure_ = r.u64();
        NDP_ASSERT(nextFailure_ <= params_.unitFailures.size(),
                   "failure cursor out of range");
        firstFailureAt_ = r.u64();
        linkErrors_ = r.u64();
        linesPoisoned_ = r.u64();
        dramFaults_ = r.u64();
    }

  private:
    FaultParams params_;
    Rng linkRng_;
    Rng poisonRng_;
    Rng dramRng_;
    std::unordered_set<Addr> poisonedLines_;
    std::unordered_set<UnitId> failed_;
    std::size_t nextFailure_ = 0;
    Cycles firstFailureAt_ = kNoFailure;

    std::uint64_t linkErrors_ = 0;
    std::uint64_t linesPoisoned_ = 0;
    std::uint64_t dramFaults_ = 0;
};

} // namespace ndpext

#endif // NDPEXT_FAULT_FAULT_INJECTOR_H
