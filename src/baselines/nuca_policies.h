/**
 * @file
 * The adapted NUCA baseline policies (Section VI "Baseline designs"),
 * expressed as Configurators over the shared cacheline-grained datapath
 * (StreamCacheParams::cachelineMode).
 *
 *  - StaticInterleave: every line hashed uniformly across all units; the
 *    policy used for the Fig. 2 motivation study.
 *  - Jigsaw [6]: miss-curve-driven sizing (lookahead) with center-of-mass
 *    placement; no replication.
 *  - Whirlpool [56]: statically classified data structures (our streams),
 *    footprint-proportional sizing, center-of-mass placement; one-shot.
 *  - Nexus [71]: Jigsaw sizing plus replication of read-only data with a
 *    single *global* replication degree chosen per epoch.
 */

#ifndef NDPEXT_BASELINES_NUCA_POLICIES_H
#define NDPEXT_BASELINES_NUCA_POLICIES_H

#include <cstdint>
#include <utility>
#include <vector>

#include "common/types.h"
#include "ndp/remap_table.h"
#include "noc/noc_model.h"
#include "runtime/config_algorithm.h"
#include "runtime/ndp_runtime.h"

namespace ndpext {

/** Geometry/capacity context shared by the baseline policies. */
struct BaselineContext
{
    std::uint32_t numUnits = 0;
    std::uint32_t rowsPerUnit = 0;
    std::uint32_t rowBytes = 2048;
    Cycles dramLatency = 40;
};

/**
 * Center-of-mass placement helper: distribute `rows` for a stream across
 * units ordered by access-weighted latency (Jigsaw/Whirlpool's iterative
 * move-to-centroid, computed directly), respecting `free_rows`.
 * @return rows placed per unit (indexed by unit).
 */
std::vector<std::uint32_t>
placeCenterOfMass(const StreamDemand& demand, std::uint64_t rows,
                  const std::vector<std::uint32_t>& free_rows,
                  const NocModel& noc);

class StaticInterleaveConfigurator : public Configurator
{
  public:
    StaticInterleaveConfigurator(const BaselineContext& ctx,
                                 const NocModel& noc)
        : ctx_(ctx), noc_(noc)
    {
    }

    std::vector<std::pair<StreamId, StreamAlloc>>
    configure(const std::vector<StreamDemand>& demands) override;

    bool reconfigures() const override { return false; }
    std::string name() const override { return "static-interleave"; }

  private:
    BaselineContext ctx_;
    const NocModel& noc_;
};

class JigsawConfigurator : public Configurator
{
  public:
    JigsawConfigurator(const BaselineContext& ctx, const NocModel& noc)
        : ctx_(ctx), noc_(noc)
    {
    }

    std::vector<std::pair<StreamId, StreamAlloc>>
    configure(const std::vector<StreamDemand>& demands) override;

    std::string name() const override { return "jigsaw"; }

  protected:
    /** Lookahead sizing shared with Nexus: bytes per stream. */
    std::vector<std::uint64_t>
    sizeStreams(const std::vector<StreamDemand>& demands,
                std::uint64_t total_bytes) const;

    BaselineContext ctx_;
    const NocModel& noc_;
};

class WhirlpoolConfigurator : public Configurator
{
  public:
    WhirlpoolConfigurator(const BaselineContext& ctx, const NocModel& noc)
        : ctx_(ctx), noc_(noc)
    {
    }

    std::vector<std::pair<StreamId, StreamAlloc>>
    configure(const std::vector<StreamDemand>& demands) override;

    bool reconfigures() const override { return false; }
    std::string name() const override { return "whirlpool"; }

  private:
    BaselineContext ctx_;
    const NocModel& noc_;
};

class NexusConfigurator : public JigsawConfigurator
{
  public:
    NexusConfigurator(const BaselineContext& ctx, const NocModel& noc,
                      std::uint32_t max_degree = 4)
        : JigsawConfigurator(ctx, noc), maxDegree_(max_degree)
    {
    }

    std::vector<std::pair<StreamId, StreamAlloc>>
    configure(const std::vector<StreamDemand>& demands) override;

    std::string name() const override { return "nexus"; }

    /** The globally chosen replication degree of the last epoch. */
    std::uint32_t lastDegree() const { return lastDegree_; }

    void serialize(ckpt::Writer& w) const override
    {
        w.u32(lastDegree_);
    }
    void deserialize(ckpt::Reader& r) override { lastDegree_ = r.u32(); }

  private:
    std::uint32_t maxDegree_;
    std::uint32_t lastDegree_ = 1;
};

} // namespace ndpext

#endif // NDPEXT_BASELINES_NUCA_POLICIES_H
