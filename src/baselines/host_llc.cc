#include "baselines/host_llc.h"

#include <cstdlib>

#include "common/logging.h"
#include "common/rng.h"

namespace ndpext {

HostLlcController::HostLlcController(const HostParams& params)
    : MemObject("host_llc"), params_(params),
      dram_(createMemBackend(params.dram, params.coreFreqMhz))
{
    NDP_ASSERT(params.numCores == params.meshX * params.meshY,
               "host mesh must match core count");
    banks_.reserve(params.numCores);
    for (std::uint32_t i = 0; i < params.numCores; ++i) {
        banks_.push_back(SetAssocCache::fromCapacity(
            params.llcBankBytes, kCachelineBytes, params.llcWays));
    }
}

void
HostLlcController::handleRequest(Packet& pkt)
{
    if (pkt.op == MemOp::Writeback) {
        writeback(pkt.src, pkt.addr, pkt.ready);
        return;
    }
    Access acc;
    acc.addr = pkt.addr;
    acc.size = pkt.bytes;
    acc.isWrite = pkt.isWrite();
    acc.sid = pkt.sid;
    acc.elem = pkt.elem;
    const LatencyBreakdown before = bd_;
    const MemResult res = access(pkt.src, acc, pkt.ready);
    // Attribute this request's bucket deltas to the packet.
    LatencyBreakdown delta = bd_;
    delta.metadata -= before.metadata;
    delta.icnIntra -= before.icnIntra;
    delta.icnInter -= before.icnInter;
    delta.dramCache -= before.dramCache;
    delta.extMem -= before.extMem;
    delta.requests -= before.requests;
    pkt.bd.merge(delta);
    pkt.ready = res.done;
}

std::uint32_t
HostLlcController::hopsBetween(std::uint32_t a, std::uint32_t b) const
{
    const std::uint32_t ax = a % params_.meshX;
    const std::uint32_t ay = a / params_.meshX;
    const std::uint32_t bx = b % params_.meshX;
    const std::uint32_t by = b / params_.meshX;
    return (ax > bx ? ax - bx : bx - ax) + (ay > by ? ay - by : by - ay);
}

MemResult
HostLlcController::access(CoreId core, const Access& acc, Cycles now)
{
    NDP_ASSERT(core < params_.numCores);
    ++bd_.requests;
    Cycles t = now;

    const std::uint64_t line = acc.addr / kCachelineBytes;
    // Static NUCA: lines hashed across all banks.
    const std::uint32_t bank =
        static_cast<std::uint32_t>(mix64(line) % banks_.size());
    const std::uint32_t hops = hopsBetween(core, bank);

    const Cycles route = static_cast<Cycles>(hops) * params_.hopCycles;
    t += route + params_.llcBankCycles;
    bd_.icnIntra += route;
    bd_.dramCache += params_.llcBankCycles; // LLC array access bucket
    nocEnergyNj_ += 64.0 * 8.0 * params_.hopPjPerBit * 1e-3
        * static_cast<double>(hops);

    if (banks_[bank].access(line, acc.isWrite)) {
        ++hits_;
        // Response route back.
        t += route;
        bd_.icnIntra += route;
        return MemResult{t};
    }
    ++misses_;

    const auto ev = banks_[bank].insert(line, acc.isWrite);
    if (ev.valid && ev.dirty) {
        dram_->access(ev.key * kCachelineBytes, kCachelineBytes, true,
                      t);
    }
    const DramResult dr = dram_->access(acc.addr, kCachelineBytes,
                                       acc.isWrite, t);
    bd_.extMem += dr.done - t;
    t = dr.done + route;
    bd_.icnIntra += route;
    return MemResult{t};
}

void
HostLlcController::writeback(CoreId core, Addr line_addr, Cycles now)
{
    (void)core;
    const std::uint64_t line = line_addr / kCachelineBytes;
    const std::uint32_t bank =
        static_cast<std::uint32_t>(mix64(line) % banks_.size());
    if (banks_[bank].contains(line)) {
        banks_[bank].access(line, true);
    } else {
        dram_->access(line_addr, kCachelineBytes, true, now);
    }
}

void
HostLlcController::report(StatGroup& stats, const std::string& prefix) const
{
    bd_.report(stats, prefix + ".lat");
    stats.add(prefix + ".llcHits", static_cast<double>(hits_));
    stats.add(prefix + ".llcMisses", static_cast<double>(misses_));
    dram_->report(stats, prefix + ".dram");
}

} // namespace ndpext
