#include "baselines/nuca_policies.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/bitutils.h"
#include "common/logging.h"

namespace ndpext {

namespace {

/** Access-weighted average latency from a demand's accessors to a unit. */
double
weightedLatency(const StreamDemand& d, UnitId unit, const NocModel& noc)
{
    double total = 0.0;
    double weight = 0.0;
    for (std::size_t i = 0; i < d.accUnits.size(); ++i) {
        const double w = static_cast<double>(d.accCounts[i]);
        total += w * static_cast<double>(noc.pureLatency(d.accUnits[i],
                                                         unit));
        weight += w;
    }
    return weight == 0.0 ? 0.0 : total / weight;
}

/** Bump row bases per unit over the emitted allocations. */
void
assignRowBases(std::vector<std::pair<StreamId, StreamAlloc>>& out,
               std::uint32_t num_units, std::uint32_t rows_per_unit)
{
    std::vector<std::uint32_t> next(num_units, 0);
    for (auto& [sid, alloc] : out) {
        (void)sid;
        for (UnitId u = 0; u < num_units; ++u) {
            if (alloc.shareRows[u] > 0) {
                alloc.rowBase[u] = next[u];
                next[u] += alloc.shareRows[u];
                NDP_ASSERT(next[u] <= rows_per_unit,
                           "baseline over-allocated unit ", u);
            }
        }
    }
}

} // namespace

std::vector<std::uint32_t>
placeCenterOfMass(const StreamDemand& demand, std::uint64_t rows,
                  const std::vector<std::uint32_t>& free_rows,
                  const NocModel& noc)
{
    const std::uint32_t num_units =
        static_cast<std::uint32_t>(free_rows.size());
    std::vector<UnitId> order(num_units);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](UnitId a, UnitId b) {
        const double la = weightedLatency(demand, a, noc);
        const double lb = weightedLatency(demand, b, noc);
        return la != lb ? la < lb : a < b;
    });

    // Fill toward the centroid, but spread each partition over at least
    // ~8 units: lines interleave across a partition's banks, so a
    // one-unit partition would serialize a hot stream on one DRAM slice
    // (which no real NUCA placement does).
    const std::uint64_t per_unit_cap =
        std::max<std::uint64_t>(1, ceilDiv(rows, 16));
    std::vector<std::uint32_t> placed(num_units, 0);
    std::uint64_t remaining = rows;
    for (int pass = 0; pass < 2 && remaining > 0; ++pass) {
        for (const UnitId u : order) {
            if (remaining == 0) {
                break;
            }
            const std::uint64_t room = free_rows[u] - placed[u];
            std::uint64_t give = std::min<std::uint64_t>(remaining, room);
            if (pass == 0) {
                // First pass also leaves most of each unit to other
                // streams so partitions interleave instead of stacking
                // whole units (bank-level load balance).
                const std::uint64_t unit_share = std::max<std::uint64_t>(
                    1,
                    std::min<std::uint64_t>(per_unit_cap,
                                            free_rows[u] / 4));
                give = std::min(give,
                                unit_share
                                    - std::min<std::uint64_t>(unit_share,
                                                              placed[u]));
            }
            placed[u] += static_cast<std::uint32_t>(give);
            remaining -= give;
        }
    }
    return placed;
}

std::vector<std::pair<StreamId, StreamAlloc>>
StaticInterleaveConfigurator::configure(
    const std::vector<StreamDemand>& demands)
{
    // All lines spread uniformly over all units: partition the per-unit
    // rows across streams proportionally to footprint, single group.
    std::vector<std::pair<StreamId, StreamAlloc>> out;
    double total_fp = 0.0;
    for (const auto& d : demands) {
        total_fp += static_cast<double>(d.footprintBytes);
    }
    if (total_fp == 0.0) {
        return out;
    }
    std::vector<std::uint32_t> used(ctx_.numUnits, 0);
    for (const auto& d : demands) {
        StreamAlloc alloc(ctx_.numUnits);
        alloc.numGroups = 1;
        const double frac =
            static_cast<double>(d.footprintBytes) / total_fp;
        const auto want = static_cast<std::uint32_t>(std::max(
            1.0, std::floor(frac * ctx_.rowsPerUnit)));
        for (UnitId u = 0; u < ctx_.numUnits; ++u) {
            const std::uint32_t give =
                std::min(want, ctx_.rowsPerUnit - used[u]);
            alloc.shareRows[u] = give;
            used[u] += give;
        }
        out.emplace_back(d.sid, std::move(alloc));
    }
    assignRowBases(out, ctx_.numUnits, ctx_.rowsPerUnit);
    return out;
}

std::vector<std::uint64_t>
JigsawConfigurator::sizeStreams(const std::vector<StreamDemand>& demands,
                                std::uint64_t total_bytes) const
{
    // Classic lookahead: repeatedly grant the steepest miss-curve segment.
    // Every accessed stream starts with a small floor so one noisy epoch
    // curve cannot starve it outright (same guard as the NDPExt
    // algorithm; see DESIGN.md 4.1).
    std::vector<std::uint64_t> sizes(demands.size(), 0);
    std::uint64_t budget = total_bytes;
    const std::uint64_t floor_bytes =
        total_bytes / (8 * std::max<std::size_t>(1, demands.size()));
    for (std::size_t i = 0; i < demands.size(); ++i) {
        sizes[i] = std::min(demands[i].footprintBytes, floor_bytes);
        budget -= std::min(budget, sizes[i]);
    }
    while (budget > 0) {
        double best_slope = 0.0;
        std::size_t best = demands.size();
        std::uint64_t best_next = 0;
        for (std::size_t i = 0; i < demands.size(); ++i) {
            const StreamDemand& d = demands[i];
            if (sizes[i] >= d.footprintBytes) {
                continue;
            }
            const auto seg = d.curve.bestSegment(sizes[i]);
            std::uint64_t next = seg.target;
            if (next == 0 || next > d.footprintBytes) {
                next = d.footprintBytes;
            }
            if (next <= sizes[i]) {
                continue;
            }
            if (seg.target != 0 && seg.slope > best_slope) {
                best_slope = seg.slope;
                best = i;
                best_next = next;
            }
        }
        if (best == demands.size()) {
            break;
        }
        const std::uint64_t grant =
            std::min<std::uint64_t>(best_next - sizes[best], budget);
        sizes[best] += grant;
        budget -= grant;
    }
    return sizes;
}

std::vector<std::pair<StreamId, StreamAlloc>>
JigsawConfigurator::configure(const std::vector<StreamDemand>& demands)
{
    const std::uint64_t total_bytes =
        static_cast<std::uint64_t>(ctx_.numUnits) * ctx_.rowsPerUnit
        * ctx_.rowBytes;
    const auto sizes = sizeStreams(demands, total_bytes);

    // Place the largest/hottest partitions first so they win the centers.
    std::vector<std::size_t> order(demands.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return sizes[a] > sizes[b];
    });

    std::vector<std::uint32_t> free_rows(ctx_.numUnits, ctx_.rowsPerUnit);
    std::vector<std::pair<StreamId, StreamAlloc>> out;
    out.reserve(demands.size());
    for (const std::size_t i : order) {
        const StreamDemand& d = demands[i];
        StreamAlloc alloc(ctx_.numUnits);
        alloc.numGroups = 1;
        const std::uint64_t rows = ceilDiv(sizes[i], ctx_.rowBytes);
        const auto placed = placeCenterOfMass(d, rows, free_rows, noc_);
        for (UnitId u = 0; u < ctx_.numUnits; ++u) {
            alloc.shareRows[u] = placed[u];
            free_rows[u] -= placed[u];
        }
        out.emplace_back(d.sid, std::move(alloc));
    }
    assignRowBases(out, ctx_.numUnits, ctx_.rowsPerUnit);
    return out;
}

std::vector<std::pair<StreamId, StreamAlloc>>
WhirlpoolConfigurator::configure(const std::vector<StreamDemand>& demands)
{
    // Static classification: partition sizes proportional to footprint
    // (no runtime curves), center-of-mass placement, computed once.
    const std::uint64_t total_bytes =
        static_cast<std::uint64_t>(ctx_.numUnits) * ctx_.rowsPerUnit
        * ctx_.rowBytes;
    double total_fp = 0.0;
    for (const auto& d : demands) {
        total_fp += static_cast<double>(d.footprintBytes);
    }
    std::vector<std::uint32_t> free_rows(ctx_.numUnits, ctx_.rowsPerUnit);
    std::vector<std::pair<StreamId, StreamAlloc>> out;
    for (const auto& d : demands) {
        StreamAlloc alloc(ctx_.numUnits);
        alloc.numGroups = 1;
        const double frac = total_fp == 0.0
            ? 0.0
            : static_cast<double>(d.footprintBytes) / total_fp;
        const std::uint64_t bytes = std::min<std::uint64_t>(
            d.footprintBytes,
            static_cast<std::uint64_t>(frac
                                       * static_cast<double>(total_bytes)));
        const auto placed = placeCenterOfMass(
            d, ceilDiv(std::max<std::uint64_t>(bytes, ctx_.rowBytes),
                       ctx_.rowBytes),
            free_rows, noc_);
        for (UnitId u = 0; u < ctx_.numUnits; ++u) {
            alloc.shareRows[u] = placed[u];
            free_rows[u] -= placed[u];
        }
        out.emplace_back(d.sid, std::move(alloc));
    }
    assignRowBases(out, ctx_.numUnits, ctx_.rowsPerUnit);
    return out;
}

std::vector<std::pair<StreamId, StreamAlloc>>
NexusConfigurator::configure(const std::vector<StreamDemand>& demands)
{
    const std::uint64_t total_bytes =
        static_cast<std::uint64_t>(ctx_.numUnits) * ctx_.rowsPerUnit
        * ctx_.rowBytes;
    const auto sizes = sizeStreams(demands, total_bytes);

    // Choose ONE global degree R for all read-only data -- Nexus's rigid
    // scheme (Section II-B): the degree that suits the hottest small
    // read-only stream is applied to every read-only stream, which is
    // precisely why NDPExt's per-stream replication beats it (paper:
    // 2.43x on recsys). The candidate degree is what the stream's access
    // share of half the machine could hold of its footprint.
    const std::uint64_t total_bytes_cap =
        static_cast<std::uint64_t>(ctx_.numUnits) * ctx_.rowsPerUnit
        * ctx_.rowBytes;
    std::uint64_t all_accesses = 0;
    for (const auto& d : demands) {
        for (const auto c : d.accCounts) {
            all_accesses += c;
        }
    }
    double best = 1.0;
    for (const auto& d : demands) {
        if (!d.readOnly || d.footprintBytes == 0 || all_accesses == 0) {
            continue;
        }
        std::uint64_t acc = 0;
        for (const auto c : d.accCounts) {
            acc += c;
        }
        const double share = static_cast<double>(acc)
            / static_cast<double>(all_accesses);
        best = std::max(best,
                        share * static_cast<double>(total_bytes_cap / 2)
                            / static_cast<double>(d.footprintBytes));
    }
    lastDegree_ = static_cast<std::uint32_t>(
        std::min<double>(maxDegree_, std::max(1.0, best)));
    const std::uint32_t best_degree = lastDegree_;

    // Allocate: read-only streams get R groups over contiguous accessor
    // clusters; read-write streams are placed like Jigsaw.
    std::vector<std::size_t> order(demands.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return sizes[a] > sizes[b];
    });

    std::vector<std::uint32_t> free_rows(ctx_.numUnits, ctx_.rowsPerUnit);
    std::vector<std::pair<StreamId, StreamAlloc>> out;
    for (const std::size_t i : order) {
        const StreamDemand& d = demands[i];
        StreamAlloc alloc(ctx_.numUnits);
        const std::uint64_t rows = ceilDiv(sizes[i], ctx_.rowBytes);
        const std::uint32_t degree = d.readOnly
            ? std::min<std::uint32_t>(
                  best_degree,
                  std::max<std::uint32_t>(
                      1,
                      static_cast<std::uint32_t>(d.accUnits.size())))
            : 1;
        alloc.numGroups = static_cast<std::uint16_t>(degree);

        if (degree == 1) {
            const auto placed = placeCenterOfMass(d, rows, free_rows, noc_);
            for (UnitId u = 0; u < ctx_.numUnits; ++u) {
                alloc.shareRows[u] = placed[u];
                free_rows[u] -= placed[u];
            }
        } else {
            // Contiguous accessor clusters; each caches one copy of
            // size/R placed around its own centroid.
            const std::uint64_t rows_per_copy =
                std::max<std::uint64_t>(1, rows / degree);
            const std::size_t chunk = static_cast<std::size_t>(
                ceilDiv(d.accUnits.size(), degree));
            for (std::uint32_t g = 0; g < degree; ++g) {
                StreamDemand sub = d;
                sub.accUnits.clear();
                sub.accCounts.clear();
                for (std::size_t a = g * chunk;
                     a < std::min(d.accUnits.size(), (g + 1) * chunk);
                     ++a) {
                    sub.accUnits.push_back(d.accUnits[a]);
                    sub.accCounts.push_back(d.accCounts[a]);
                }
                if (sub.accUnits.empty()) {
                    continue;
                }
                const auto placed =
                    placeCenterOfMass(sub, rows_per_copy, free_rows, noc_);
                for (UnitId u = 0; u < ctx_.numUnits; ++u) {
                    if (placed[u] == 0) {
                        continue;
                    }
                    // A unit may only serve one group; skip if taken.
                    if (alloc.shareRows[u] != 0) {
                        continue;
                    }
                    alloc.shareRows[u] = placed[u];
                    alloc.groupOf[u] = static_cast<std::uint16_t>(g);
                    free_rows[u] -= placed[u];
                }
            }
        }
        out.emplace_back(d.sid, std::move(alloc));
    }
    assignRowBases(out, ctx_.numUnits, ctx_.rowsPerUnit);
    return out;
}

} // namespace ndpext
