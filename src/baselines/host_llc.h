/**
 * @file
 * The non-NDP host baseline (Section VI): a 64-core processor with a
 * 32 MB NUCA LLC (512 kB bank per core, 9-cycle bank access + 3 cycles
 * per mesh hop, as in the Fig. 2 NUCA configuration) in front of DDR5
 * main memory. Used for the "Host" bars of Fig. 5 and the NUCA side of
 * the Fig. 2 motivation study.
 */

#ifndef NDPEXT_BASELINES_HOST_LLC_H
#define NDPEXT_BASELINES_HOST_LLC_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cache/set_assoc_cache.h"
#include "common/types.h"
#include "cpu/core.h"
#include "mem/mem_backend.h"
#include "sim/breakdown.h"
#include "sim/port.h"
#include "sim/stats.h"

namespace ndpext {

struct HostParams
{
    std::uint32_t numCores = 64;
    std::uint64_t llcBankBytes = 512_KiB;
    std::uint32_t llcWays = 16;
    Cycles llcBankCycles = 9;
    Cycles hopCycles = 3;
    /** Cores/banks arranged on a meshX x meshY grid. */
    std::uint32_t meshX = 8;
    std::uint32_t meshY = 8;
    MemBackendConfig dram = DramTimingParams::ddr5Host();
    std::uint64_t coreFreqMhz = 2000;
    /** NoC energy per bit per hop. */
    double hopPjPerBit = 0.4;
};

class HostLlcController : public MemObject
{
  public:
    explicit HostLlcController(const HostParams& params);

    HostLlcController(const HostLlcController&) = delete;
    HostLlcController& operator=(const HostLlcController&) = delete;

    /** Port entry ("cpu_side"): dispatches reads/writes and writebacks. */
    void handleRequest(Packet& pkt);

    MemResult access(CoreId core, const Access& access, Cycles now);
    void writeback(CoreId core, Addr line_addr, Cycles now);

    const LatencyBreakdown& breakdown() const { return bd_; }
    std::uint64_t llcHits() const { return hits_; }
    std::uint64_t llcMisses() const { return misses_; }
    double
    llcHitRate() const
    {
        const double total = static_cast<double>(hits_ + misses_);
        return total == 0.0 ? 0.0 : static_cast<double>(hits_) / total;
    }
    double dramEnergyNj() const { return dram_->dynamicEnergyNj(); }
    double nocEnergyNj() const { return nocEnergyNj_; }

    void report(StatGroup& stats, const std::string& prefix) const;

  protected:
    MemPort* getPort(const std::string& port_name) override
    {
        return port_name == "cpu_side" ? &cpuSide_ : nullptr;
    }

  private:
    /** Response port adapter forwarding into handleRequest(). */
    class CpuSidePort final : public MemPort
    {
      public:
        explicit CpuSidePort(HostLlcController& owner)
            : MemPort("host_llc.cpu_side"), owner_(owner)
        {
        }
        void recvAtomic(Packet& pkt) final
        {
            owner_.handleRequest(pkt);
        }

      private:
        HostLlcController& owner_;
    };

    std::uint32_t hopsBetween(std::uint32_t a, std::uint32_t b) const;

    CpuSidePort cpuSide_{*this};

    HostParams params_;
    std::vector<SetAssocCache> banks_;
    std::unique_ptr<MemBackend> dram_;

    LatencyBreakdown bd_;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    double nocEnergyNj_ = 0.0;
};

} // namespace ndpext

#endif // NDPEXT_BASELINES_HOST_LLC_H
