#include "stream/stream_config.h"

#include <utility>

#include "common/logging.h"

namespace ndpext {

bool
StreamConfig::isReordered() const
{
    for (std::uint8_t d = 0; d < dims; ++d) {
        if (order[d] != d) {
            return true;
        }
    }
    return false;
}

void
StreamConfig::validate() const
{
    NDP_ASSERT(size > 0 && elemSize > 0, "stream ", name);
    NDP_ASSERT(size % elemSize == 0, "stream ", name,
               ": size not a multiple of elemSize");
    NDP_ASSERT(dims >= 1 && dims <= 3, "stream ", name, ": dims=", dims);
    if (dims > 1) {
        NDP_ASSERT(type == StreamType::Affine,
                   "multi-dim indirect stream ", name);
        // Strides must nest: stride[d] = stride[d-1] * length[d-1].
        std::uint64_t expect = elemSize;
        std::uint64_t total = 1;
        for (std::uint8_t d = 0; d < dims; ++d) {
            NDP_ASSERT(stride[d] == expect, "stream ", name,
                       ": non-nested stride at dim ", d);
            NDP_ASSERT(length[d] > 0, "stream ", name,
                       ": zero length at dim ", d);
            expect *= length[d];
            total *= length[d];
        }
        NDP_ASSERT(total * elemSize == size, "stream ", name,
                   ": lengths inconsistent with size");
        // Order must be a permutation of [0, dims).
        bool seen[3] = {false, false, false};
        for (std::uint8_t d = 0; d < dims; ++d) {
            NDP_ASSERT(order[d] < dims && !seen[order[d]], "stream ", name,
                       ": order is not a permutation");
            seen[order[d]] = true;
        }
    }
}

ElemId
StreamConfig::elemIdOf(Addr addr) const
{
    NDP_ASSERT(contains(addr), "stream ", name, ": addr out of range");
    const std::uint64_t offset = addr - base;
    if (dims == 1 || !isReordered()) {
        return offset / elemSize;
    }
    // Recover logical indices from the storage layout (strides nest).
    std::uint64_t idx[3] = {0, 0, 0};
    std::uint64_t rem = offset;
    for (int d = dims - 1; d >= 0; --d) {
        idx[d] = rem / stride[static_cast<std::size_t>(d)];
        rem %= stride[static_cast<std::size_t>(d)];
    }
    // Linearize in access order: order[0] is the innermost accessed dim.
    ElemId id = 0;
    for (int k = dims - 1; k >= 0; --k) {
        const std::uint8_t d = order[static_cast<std::size_t>(k)];
        id = id * length[d] + idx[d];
    }
    return id;
}

Addr
StreamConfig::addrOf(ElemId elem) const
{
    NDP_ASSERT(elem < numElems(), "stream ", name, ": elem out of range");
    if (dims == 1 || !isReordered()) {
        return base + elem * elemSize;
    }
    // Decompose the access-order index, then apply storage strides.
    std::uint64_t idx[3] = {0, 0, 0};
    std::uint64_t rem = elem;
    for (std::uint8_t k = 0; k < dims; ++k) {
        const std::uint8_t d = order[k];
        idx[d] = rem % length[d];
        rem /= length[d];
    }
    Addr addr = base;
    for (std::uint8_t d = 0; d < dims; ++d) {
        addr += idx[d] * stride[d];
    }
    return addr;
}

StreamConfig
StreamConfig::dense(std::string name, StreamType type, Addr base,
                    std::uint64_t size, std::uint32_t elem_size)
{
    StreamConfig cfg;
    cfg.name = std::move(name);
    cfg.type = type;
    cfg.base = base;
    cfg.size = size;
    cfg.elemSize = elem_size;
    cfg.dims = 1;
    cfg.stride[0] = elem_size;
    cfg.length[0] = size / elem_size;
    cfg.validate();
    return cfg;
}

StreamConfig
StreamConfig::matrix2d(std::string name, Addr base, std::uint64_t rows,
                       std::uint64_t cols, std::uint32_t elem_size,
                       bool col_major)
{
    StreamConfig cfg;
    cfg.name = std::move(name);
    cfg.type = StreamType::Affine;
    cfg.base = base;
    cfg.size = rows * cols * elem_size;
    cfg.elemSize = elem_size;
    cfg.dims = 2;
    // Storage: row-major; dim 0 = column index (innermost), dim 1 = row.
    cfg.stride[0] = elem_size;
    cfg.stride[1] = cols * elem_size;
    cfg.length[0] = cols;
    cfg.length[1] = rows;
    if (col_major) {
        cfg.order = {1, 0, 2}; // iterate rows innermost
    }
    cfg.validate();
    return cfg;
}

} // namespace ndpext
