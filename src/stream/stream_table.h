/**
 * @file
 * The centralized stream table kept by the host runtime (Section IV-B).
 *
 * Streams are registered through configureStream() -- the repo's analogue
 * of the paper's configure_stream(type, base, size, elemSize, ...) API --
 * after data allocation and before accesses. The table owns the authoritative
 * StreamConfig records; NDP units cache subsets in their SLBs.
 */

#ifndef NDPEXT_STREAM_STREAM_TABLE_H
#define NDPEXT_STREAM_STREAM_TABLE_H

#include <cstdint>
#include <map>
#include <vector>

#include "common/types.h"
#include "stream/stream_config.h"

namespace ndpext {

class StreamTable
{
  public:
    /** Maximum stream count (9-bit sid, Section IV-B). */
    static constexpr std::size_t kMaxStreams = 512;

    /**
     * Register a stream; assigns and returns its sid. Ranges must not
     * overlap existing streams (one address maps to at most one stream,
     * Section IV-C).
     */
    StreamId configureStream(StreamConfig cfg);

    const StreamConfig& stream(StreamId sid) const;
    StreamConfig& stream(StreamId sid);

    std::size_t numStreams() const { return streams_.size(); }

    /** Find the stream containing addr, or kNoStream. */
    StreamId findByAddr(Addr addr) const;

    /** Clear the read-only bit (write-to-read-only exception path). */
    void markWritten(StreamId sid);

    const std::vector<StreamConfig>& all() const { return streams_; }

  private:
    std::vector<StreamConfig> streams_;
    /** base address -> sid, for range lookups. */
    std::map<Addr, StreamId> byBase_;
};

} // namespace ndpext

#endif // NDPEXT_STREAM_STREAM_TABLE_H
