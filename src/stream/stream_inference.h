/**
 * @file
 * Automatic stream classification from observed address sequences.
 *
 * The paper annotates streams manually (averaging 4.3 lines per workload)
 * and defers compiler support to future work (Section IV-A). This module
 * provides the runtime-side building block: given a per-data-structure
 * address trace, classify its access pattern as affine (constant stride),
 * strided-affine, or indirect, and propose the configure_stream()
 * arguments. A practical deployment would run it over a profiling window
 * before the first epoch.
 */

#ifndef NDPEXT_STREAM_STREAM_INFERENCE_H
#define NDPEXT_STREAM_STREAM_INFERENCE_H

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/types.h"
#include "stream/stream_config.h"

namespace ndpext {

/** Verdict of the classifier for one address range. */
struct InferredStream
{
    StreamType type = StreamType::Indirect;
    /** Observed range [base, end). */
    Addr base = 0;
    Addr end = 0;
    /** Inferred element size (gcd of deltas, clamped to [1, 4096]). */
    std::uint32_t elemSize = 8;
    /** Dominant stride in elements (affine only; 1 = dense scan). */
    std::int64_t strideElems = 1;
    /** Fraction of deltas matching the dominant stride. */
    double regularity = 0.0;
    /** Fraction of re-visited addresses (reuse indicator). */
    double reuse = 0.0;

    /** Materialize a StreamConfig covering the observed range. */
    StreamConfig toConfig(std::string name, bool read_only) const;
};

/**
 * Online classifier: feed addresses one at a time; ask for the verdict
 * any time after minSamples addresses.
 */
class StreamClassifier
{
  public:
    /**
     * @param regularity_threshold Fraction of constant-stride deltas
     *        above which the pattern counts as affine (paper workloads:
     *        affine streams are >99% regular).
     */
    explicit StreamClassifier(double regularity_threshold = 0.9);

    /** Observe the next accessed address of this data structure. */
    void observe(Addr addr);

    std::uint64_t samples() const { return samples_; }

    /** Classify what has been seen so far (nullopt below 16 samples). */
    std::optional<InferredStream> infer() const;

    void reset();

  private:
    double threshold_;
    std::uint64_t samples_ = 0;
    Addr last_ = 0;
    Addr minAddr_ = 0;
    Addr maxAddr_ = 0;
    /** Delta histogram: (delta, count), kept small. */
    std::vector<std::pair<std::int64_t, std::uint64_t>> deltas_;
    std::uint64_t revisits_ = 0;
    /** Small recent-address window for reuse detection. */
    std::vector<Addr> recent_;
    std::size_t recentCursor_ = 0;
};

/**
 * Convenience batch API: classify a whole trace slice at once.
 */
std::optional<InferredStream>
inferStream(const std::vector<Addr>& addresses,
            double regularity_threshold = 0.9);

} // namespace ndpext

#endif // NDPEXT_STREAM_STREAM_INFERENCE_H
