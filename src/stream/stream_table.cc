#include "stream/stream_table.h"

#include <utility>

#include "common/logging.h"

namespace ndpext {

StreamId
StreamTable::configureStream(StreamConfig cfg)
{
    cfg.validate();
    NDP_ASSERT(streams_.size() < kMaxStreams, "too many streams");

    // Reject overlap with any existing stream (Section IV-C: one address
    // is associated with at most one stream).
    auto it = byBase_.upper_bound(cfg.base);
    if (it != byBase_.begin()) {
        auto prev = std::prev(it);
        const StreamConfig& p = streams_[prev->second];
        NDP_ASSERT(p.end() <= cfg.base, "stream ", cfg.name,
                   " overlaps stream ", p.name);
    }
    if (it != byBase_.end()) {
        const StreamConfig& n = streams_[it->second];
        NDP_ASSERT(cfg.end() <= n.base, "stream ", cfg.name,
                   " overlaps stream ", n.name);
    }

    const StreamId sid = static_cast<StreamId>(streams_.size());
    cfg.sid = sid;
    byBase_[cfg.base] = sid;
    streams_.push_back(std::move(cfg));
    return sid;
}

const StreamConfig&
StreamTable::stream(StreamId sid) const
{
    NDP_ASSERT(sid < streams_.size(), "bad sid ", sid);
    return streams_[sid];
}

StreamConfig&
StreamTable::stream(StreamId sid)
{
    NDP_ASSERT(sid < streams_.size(), "bad sid ", sid);
    return streams_[sid];
}

StreamId
StreamTable::findByAddr(Addr addr) const
{
    auto it = byBase_.upper_bound(addr);
    if (it == byBase_.begin()) {
        return kNoStream;
    }
    const StreamId sid = std::prev(it)->second;
    return streams_[sid].contains(addr) ? sid : kNoStream;
}

void
StreamTable::markWritten(StreamId sid)
{
    stream(sid).readOnly = false;
}

} // namespace ndpext
