/**
 * @file
 * Software-defined stream metadata (Table I) and the affine element-id
 * mapping with up-to-3-dimension access reordering (Section IV-A).
 *
 * A stream's *element id* is its index in ACCESS order. For plain streams
 * that equals (addr - base) / elemSize; for reordered affine streams (e.g.,
 * column-major accesses to a row-major matrix) it is the linearization of
 * the logical indices in the access-dimension order. The hardware caches
 * elements by access order, so consecutive ids share a cache block, which
 * is how reordering "significantly improves data spatial locality".
 */

#ifndef NDPEXT_STREAM_STREAM_CONFIG_H
#define NDPEXT_STREAM_STREAM_CONFIG_H

#include <array>
#include <cstdint>
#include <string>

#include "common/types.h"

namespace ndpext {

enum class StreamType : std::uint8_t
{
    Affine,
    Indirect,
};

/**
 * One entry of the centralized stream table (Table I: sid 9b, base 48b,
 * size 48b, elemSize, readOnly, stride 48x3, length 48x2, order 3b).
 */
struct StreamConfig
{
    StreamId sid = kNoStream;
    StreamType type = StreamType::Affine;
    /** Human-readable name for reports ("edge_list", "rank_scores"...). */
    std::string name;
    /** Base physical address. */
    Addr base = 0;
    /** Total stream size in bytes. */
    std::uint64_t size = 0;
    /** Size of each element in bytes. */
    std::uint32_t elemSize = 8;
    /**
     * Read-only bit, initialized to 1; the first write raises an exception
     * to the host which clears it and collapses replication (Section IV-B).
     */
    bool readOnly = true;

    /** Number of logical dimensions (1 to 3); affine only. */
    std::uint8_t dims = 1;
    /**
     * Storage stride in bytes along dims 0 (innermost) .. 2. For dims < 3
     * the unused entries are 0. stride[0] is elemSize for dense streams.
     */
    std::array<std::uint64_t, 3> stride{0, 0, 0};
    /** Element count along each dim; length[0] derived from size if 0. */
    std::array<std::uint64_t, 3> length{0, 0, 0};
    /**
     * Access dimension order: order[k] is the storage dim iterated at
     * nesting level k (0 = innermost accessed dim). Default identity.
     */
    std::array<std::uint8_t, 3> order{0, 1, 2};

    /** Total element count. */
    std::uint64_t numElems() const { return size / elemSize; }

    /** End address (exclusive). */
    Addr end() const { return base + size; }

    /** True if addr falls inside [base, base+size). */
    bool
    contains(Addr addr) const
    {
        return addr >= base && addr < end();
    }

    /** True if the access order differs from the storage order. */
    bool isReordered() const;

    /** Validate internal consistency; panics on malformed configs. */
    void validate() const;

    /**
     * Element id (access-order index) of a byte address inside the stream.
     * For indirect / 1-D streams this is (addr - base) / elemSize.
     */
    ElemId elemIdOf(Addr addr) const;

    /** Inverse of elemIdOf: start address of an element. */
    Addr addrOf(ElemId elem) const;

    /** Convenience builder for a dense 1-D stream. */
    static StreamConfig dense(std::string name, StreamType type, Addr base,
                              std::uint64_t size, std::uint32_t elem_size);

    /**
     * Convenience builder for a 2-D affine stream over a row-major matrix
     * of `rows` x `cols` elements, accessed column-major if `col_major`.
     */
    static StreamConfig matrix2d(std::string name, Addr base,
                                 std::uint64_t rows, std::uint64_t cols,
                                 std::uint32_t elem_size, bool col_major);
};

} // namespace ndpext

#endif // NDPEXT_STREAM_STREAM_CONFIG_H
