#include "stream/stream_inference.h"

#include <algorithm>
#include <numeric>

#include "common/bitutils.h"
#include "common/logging.h"

namespace ndpext {

namespace {

constexpr std::size_t kMaxTrackedDeltas = 64;
constexpr std::size_t kRecentWindow = 128;
constexpr std::uint64_t kMinSamples = 16;

} // namespace

StreamConfig
InferredStream::toConfig(std::string name, bool read_only) const
{
    const Addr aligned_base = alignDown(base, elemSize);
    const std::uint64_t size =
        alignUp(end - aligned_base, elemSize);
    StreamConfig cfg = StreamConfig::dense(std::move(name), type,
                                           aligned_base, size, elemSize);
    cfg.readOnly = read_only;
    return cfg;
}

StreamClassifier::StreamClassifier(double regularity_threshold)
    : threshold_(regularity_threshold), recent_(kRecentWindow, 0)
{
    NDP_ASSERT(regularity_threshold > 0.0 && regularity_threshold <= 1.0);
}

void
StreamClassifier::observe(Addr addr)
{
    if (samples_ == 0) {
        minAddr_ = maxAddr_ = addr;
    } else {
        minAddr_ = std::min(minAddr_, addr);
        maxAddr_ = std::max(maxAddr_, addr);
        const std::int64_t delta = static_cast<std::int64_t>(addr)
            - static_cast<std::int64_t>(last_);
        auto it = std::find_if(deltas_.begin(), deltas_.end(),
                               [delta](const auto& e) {
                                   return e.first == delta;
                               });
        if (it != deltas_.end()) {
            ++it->second;
        } else if (deltas_.size() < kMaxTrackedDeltas) {
            deltas_.emplace_back(delta, 1);
        }
        // Reuse detection over a small window.
        for (const Addr a : recent_) {
            if (a == addr && samples_ > 0) {
                ++revisits_;
                break;
            }
        }
    }
    recent_[recentCursor_] = addr;
    recentCursor_ = (recentCursor_ + 1) % recent_.size();
    last_ = addr;
    ++samples_;
}

std::optional<InferredStream>
StreamClassifier::infer() const
{
    if (samples_ < kMinSamples) {
        return std::nullopt;
    }
    InferredStream out;
    out.base = minAddr_;

    // Element size: gcd of the absolute deltas (clamped).
    std::uint64_t gcd = 0;
    std::uint64_t total_deltas = 0;
    std::int64_t dominant = 0;
    std::uint64_t dominant_count = 0;
    for (const auto& [delta, count] : deltas_) {
        total_deltas += count;
        if (delta != 0) {
            gcd = std::gcd(gcd, static_cast<std::uint64_t>(
                                    delta < 0 ? -delta : delta));
        }
        if (count > dominant_count && delta != 0) {
            dominant_count = count;
            dominant = delta;
        }
    }
    out.elemSize = static_cast<std::uint32_t>(
        std::clamp<std::uint64_t>(gcd == 0 ? 8 : gcd, 1, 4096));
    out.end = maxAddr_ + out.elemSize;

    out.regularity = total_deltas == 0
        ? 0.0
        : static_cast<double>(dominant_count)
            / static_cast<double>(total_deltas);
    out.reuse =
        static_cast<double>(revisits_) / static_cast<double>(samples_);

    if (out.regularity >= threshold_ && dominant != 0) {
        out.type = StreamType::Affine;
        out.strideElems = dominant / static_cast<std::int64_t>(
                                         out.elemSize);
        if (out.strideElems == 0) {
            out.strideElems = 1;
        }
    } else {
        out.type = StreamType::Indirect;
        out.strideElems = 0;
    }
    return out;
}

void
StreamClassifier::reset()
{
    samples_ = 0;
    last_ = 0;
    minAddr_ = maxAddr_ = 0;
    deltas_.clear();
    revisits_ = 0;
    std::fill(recent_.begin(), recent_.end(), 0);
    recentCursor_ = 0;
}

std::optional<InferredStream>
inferStream(const std::vector<Addr>& addresses,
            double regularity_threshold)
{
    StreamClassifier classifier(regularity_threshold);
    for (const Addr a : addresses) {
        classifier.observe(a);
    }
    return classifier.infer();
}

} // namespace ndpext
