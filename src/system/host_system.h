/**
 * @file
 * The non-NDP host system (Section VI): the same workload generators run
 * on 64 host cores with a 32 MB NUCA LLC and DDR5 main memory. Produces
 * the normalization baseline for Fig. 5 and the NUCA half of Fig. 2(a).
 */

#ifndef NDPEXT_SYSTEM_HOST_SYSTEM_H
#define NDPEXT_SYSTEM_HOST_SYSTEM_H

#include "baselines/host_llc.h"
#include "system/ndp_system.h"
#include "workloads/workload.h"

namespace ndpext {

class HostSystem
{
  public:
    explicit HostSystem(const HostParams& params = HostParams{});

    /** Run a prepared workload (numCores must equal the host core count). */
    RunResult run(const Workload& workload);

    const HostParams& params() const { return params_; }

  private:
    HostParams params_;
    CoreParams core_;
    bool used_ = false;
};

} // namespace ndpext

#endif // NDPEXT_SYSTEM_HOST_SYSTEM_H
