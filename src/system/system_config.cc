#include "system/system_config.h"

#include <algorithm>

#include "common/logging.h"
#include "mem/mem_backend_registry.h"

namespace ndpext {

std::string
policyName(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::NdpExt:
        return "ndpext";
      case PolicyKind::NdpExtStatic:
        return "ndpext-static";
      case PolicyKind::Jigsaw:
        return "jigsaw";
      case PolicyKind::Whirlpool:
        return "whirlpool";
      case PolicyKind::Nexus:
        return "nexus";
      case PolicyKind::StaticInterleave:
        return "static-interleave";
    }
    NDP_PANIC("bad policy kind");
}

PolicyKind
policyFromName(const std::string& name)
{
    if (name == "ndpext") {
        return PolicyKind::NdpExt;
    }
    if (name == "ndpext-static") {
        return PolicyKind::NdpExtStatic;
    }
    if (name == "jigsaw") {
        return PolicyKind::Jigsaw;
    }
    if (name == "whirlpool") {
        return PolicyKind::Whirlpool;
    }
    if (name == "nexus") {
        return PolicyKind::Nexus;
    }
    if (name == "static-interleave") {
        return PolicyKind::StaticInterleave;
    }
    NDP_FATAL("unknown policy: ", name);
}

bool
isCachelinePolicy(PolicyKind kind)
{
    switch (kind) {
      case PolicyKind::NdpExt:
      case PolicyKind::NdpExtStatic:
        return false;
      case PolicyKind::Jigsaw:
      case PolicyKind::Whirlpool:
      case PolicyKind::Nexus:
      case PolicyKind::StaticInterleave:
        return true;
    }
    NDP_PANIC("bad policy kind");
}

DramTimingParams
SystemConfig::unitDram() const
{
    return unitMemBackend().timing;
}

namespace {

/** Fill a role's timing default when the user picked none. */
MemBackendConfig
resolveRole(const MemBackendConfig& cfg, const DramTimingParams& fallback)
{
    MemBackendConfig out = cfg;
    if (!out.timingSet) {
        out.timing = fallback;
        out.timingSet = true;
    }
    return out;
}

} // namespace

MemBackendConfig
SystemConfig::unitMemBackend() const
{
    return resolveRole(memBackendUnit,
                       memType == NdpMemType::Hbm3
                           ? DramTimingParams::hbm3Unit()
                           : DramTimingParams::hmc2Unit());
}

MemBackendConfig
SystemConfig::extMemBackend() const
{
    return resolveRole(memBackendExt, DramTimingParams::ddr5Extended());
}

MemBackendConfig
SystemConfig::hostMemBackend() const
{
    return resolveRole(memBackendHost, DramTimingParams::ddr5Host());
}

bool
SystemConfig::validate(std::string* error) const
{
    const auto fail = [&](const std::string& why) {
        if (error != nullptr) {
            *error = why;
        }
        return false;
    };
    if (numUnits() == 0) {
        return fail("system geometry has zero units (stacks "
                    + std::to_string(stacksX) + "x"
                    + std::to_string(stacksY) + ", units "
                    + std::to_string(unitsX) + "x"
                    + std::to_string(unitsY) + ")");
    }
    const DramTimingParams dram = unitDram();
    if (unitCacheBytes < dram.rowBytes * 4) {
        return fail("unit cache of " + std::to_string(unitCacheBytes)
                    + " bytes cannot hold 4 DRAM rows ("
                    + std::to_string(dram.rowBytes * 4) + " bytes)");
    }
    if (runtime.epochCycles == 0) {
        return fail("epoch length must be nonzero");
    }
    const auto& registry = MemBackendRegistry::instance();
    for (const auto& [role, roleCfg] :
         {std::pair<const char*, const MemBackendConfig*>{
              "unit", &memBackendUnit},
          {"ext", &memBackendExt},
          {"host", &memBackendHost}}) {
        const MemBackendInfo* info = registry.find(roleCfg->backend);
        if (info == nullptr) {
            std::string why = "unknown memory backend '"
                              + roleCfg->backend + "' for role '" + role
                              + "'";
            const std::string hint = registry.suggest(roleCfg->backend);
            if (!hint.empty()) {
                why += " (did you mean '" + hint + "'?)";
            } else {
                std::string known;
                for (const auto& n : registry.names()) {
                    known += (known.empty() ? "" : ", ") + n;
                }
                why += " (registered backends: " + known + ")";
            }
            return fail(why);
        }
        for (const auto& [key, value] : roleCfg->tunables) {
            const bool declared = std::any_of(
                info->tunables.begin(), info->tunables.end(),
                [&key = key](const MemTunable& t) {
                    return t.key == key;
                });
            if (!declared) {
                return fail("memory backend '" + roleCfg->backend
                            + "' has no tunable '" + key
                            + "' (see --list-mem-backends)");
            }
        }
    }
    if (numThreads == 0) {
        return fail("thread count must be nonzero");
    }
    for (const auto& f : faults.unitFailures) {
        if (f.unit >= numUnits()) {
            return fail("--fault=unit:" + std::to_string(f.unit)
                        + " names a nonexistent unit (system has "
                        + std::to_string(numUnits()) + " units, ids 0-"
                        + std::to_string(numUnits() - 1) + ")");
        }
    }
    if (serving.enabled()) {
        std::string why;
        if (!validateServingConfig(serving, &why)) {
            return fail(why);
        }
    }
    return true;
}

void
SystemConfig::finalize()
{
    NDP_ASSERT(numUnits() > 0);
    const DramTimingParams dram = unitDram();
    NDP_ASSERT(unitCacheBytes >= dram.rowBytes * 4,
               "unit cache must hold at least 4 DRAM rows");

    // Affine space restriction: the paper's 16 MB cap exists to bound
    // the affine tag array to 16k SRAM entries -- an *absolute* hardware
    // budget, not a fraction of the DRAM cache. At scaled capacities the
    // restriction therefore only binds when the unit cache exceeds what
    // 16k tags can cover (Fig. 9c sweeps it explicitly).
    if (cache.affineCapBytesPerUnit == 16_MiB) {
        cache.affineCapBytesPerUnit = std::min<std::uint64_t>(
            16_MiB,
            std::max<std::uint64_t>(unitCacheBytes / 4,
                                    dram.rowBytes * 4));
    }

    // Sampler capacity range spans one unit's DRAM cache, geometric, as
    // in Section V-A (32 kB..256 MB at paper scale).
    cache.sampler.maxCapacityBytes = unitCacheBytes;
    cache.sampler.minCapacityBytes =
        std::max<std::uint64_t>(1024, unitCacheBytes / 8192);
}

SystemConfig
SystemConfig::scaledDefault()
{
    SystemConfig cfg;
    // Scaled runs complete in a few million cycles; epochs scale with
    // them (paper: 50M-cycle epochs over billions of cycles).
    cfg.runtime.epochCycles = 500'000;
    cfg.runtime.partialUntilCycles = 2'000'000;
    cfg.finalize();
    return cfg;
}

SystemConfig
SystemConfig::paperScale()
{
    SystemConfig cfg;
    cfg.unitsX = 4;
    cfg.unitsY = 4;
    cfg.unitCacheBytes = 256_MiB;
    cfg.cache.affineCapBytesPerUnit = 16_MiB;
    cfg.runtime.epochCycles = 50'000'000;
    cfg.runtime.partialUntilCycles = 200'000'000;
    cfg.finalize();
    return cfg;
}

} // namespace ndpext
