/**
 * @file
 * NdpSystem wires every component together -- cores, stream cache (or the
 * cacheline baseline datapath), NoC, local DRAM, CXL extended memory, and
 * the host runtime -- runs a workload to completion, and returns the
 * metrics the paper's figures are built from.
 */

#ifndef NDPEXT_SYSTEM_NDP_SYSTEM_H
#define NDPEXT_SYSTEM_NDP_SYSTEM_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sim/breakdown.h"
#include "sim/stats.h"
#include "system/system_config.h"
#include "workloads/workload.h"

namespace ndpext {

class Telemetry;

struct EnergyBreakdown
{
    double staticNj = 0.0;
    double ndpDramNj = 0.0;
    double extDramNj = 0.0;
    double cxlLinkNj = 0.0;
    double icnNj = 0.0;
    double sramNj = 0.0;

    double
    totalNj() const
    {
        return staticNj + ndpDramNj + extDramNj + cxlLinkNj + icnNj
            + sramNj;
    }
};

/** Degraded-mode counters (all zero on a fault-free run). */
struct DegradedStats
{
    std::uint64_t linkRetries = 0;
    std::uint64_t retriesExhausted = 0;
    std::uint64_t poisonedReads = 0;
    std::uint64_t poisonEscalations = 0;
    std::uint64_t failedUnitRedirects = 0;
    std::uint64_t dramFaultRefetches = 0;
    std::uint64_t failedUnits = 0;
    std::uint64_t emergencyReconfigs = 0;
    /** Cycles between the first fired unit failure and completion. */
    Cycles cyclesDegraded = 0;

    bool
    any() const
    {
        return linkRetries != 0 || retriesExhausted != 0
            || poisonedReads != 0 || poisonEscalations != 0
            || failedUnitRedirects != 0 || dramFaultRefetches != 0
            || failedUnits != 0 || emergencyReconfigs != 0;
    }
};

struct RunResult
{
    std::string workload;
    std::string policy;
    /** Completion time: the slowest core's final cycle. */
    Cycles cycles = 0;
    std::uint64_t accesses = 0;
    std::uint64_t l1Hits = 0;
    /** Memory-system latency breakdown over L1 misses. */
    LatencyBreakdown bd;
    /** DRAM-cache miss rate over stream accesses (Fig. 7 dots). */
    double missRate = 0.0;
    /** Baseline metadata-cache hit rate (Section VII-A discussion). */
    double metadataHitRate = 1.0;
    EnergyBreakdown energy;
    std::uint64_t writeExceptions = 0;
    std::uint64_t invalidatedRows = 0;
    std::uint64_t survivedRows = 0;
    std::uint64_t reconfigurations = 0;
    std::uint64_t slbMisses = 0;
    DegradedStats degraded;

    /**
     * Engine throughput (advisory, host wall-clock): microseconds spent
     * inside the barrier loop, excluding machine construction and
     * workload preparation. The deterministic companions (events fired,
     * pool high-water marks) live in `stats` under "engine.".
     */
    std::uint64_t engineWallMicros = 0;

    /** Simulated accesses per wall-clock second of the barrier loop. */
    double
    engineAccessesPerSec() const
    {
        return engineWallMicros == 0
            ? 0.0
            : static_cast<double>(accesses) * 1e6
                / static_cast<double>(engineWallMicros);
    }

    /** Average interconnect latency per request in cycles (Fig. 7 bars). */
    double
    avgIcnCycles() const
    {
        return bd.avg(bd.icnIntra + bd.icnInter);
    }
    /** Average end-to-end memory latency per L1 miss, cycles. */
    double
    avgMemLatency() const
    {
        return bd.avg(bd.total());
    }

    StatGroup stats;
};

class NdpSystem
{
  public:
    NdpSystem(const SystemConfig& config, PolicyKind policy);

    /**
     * Run a prepared workload (numCores must equal the unit count).
     * The system is single-use: construct a fresh one per run.
     */
    RunResult run(const Workload& workload);

    /**
     * Attach (or detach with nullptr) a telemetry sink before run().
     * The system registers every component's metric series, samples them
     * at epoch barriers, records epoch/shard spans and packet slices in
     * the trace, and feeds the runtime's decision log. Observer-only:
     * the RunResult is bit-identical with telemetry attached or not
     * (DESIGN.md §6). The caller owns the Telemetry and writes it out.
     */
    void attachTelemetry(Telemetry* telemetry) { telemetry_ = telemetry; }

    /**
     * Enable epoch-barrier checkpointing: after every `every_n_epochs`
     * completed epochs the full deterministic machine state is written
     * to `<prefix>.<epoch>.ckpt` (crash-safe temp + fsync + rename).
     * Call before run(); 0 disables. A save failure (e.g. disk full) is
     * reported as a warning and the run continues -- the simulation
     * result is unaffected.
     */
    void
    setCheckpointing(std::string prefix, std::uint64_t every_n_epochs)
    {
        ckptPrefix_ = std::move(prefix);
        ckptEvery_ = every_n_epochs;
    }

    /**
     * Resume run() from a checkpoint image instead of starting fresh.
     * Call after attachTelemetry() (telemetry state travels in the
     * image) and before run(), passing the same prepared workload that
     * run() will receive. The image is fully validated here -- magic,
     * version, size, CRC, and the config hash binding it to this exact
     * system configuration, policy, workload and fault schedule.
     * @return false with a diagnostic in `*error` (recoverable; nothing
     *         asserts) if the file is missing, corrupt or mismatched.
     */
    bool setResume(const std::string& path, const Workload& workload,
                   std::string* error);

    /** Completed epochs of the image accepted by setResume (0 before). */
    std::uint64_t resumeEpoch() const { return resumeEpoch_; }

    /**
     * Register a heartbeat status file (may be called more than once;
     * duplicates are dropped). At every epoch barrier -- and once more
     * at completion with "done":true -- the run atomically rewrites each
     * registered path with a small JSON object: epoch/cycle progress,
     * retired-access counts, per-tenant SLO tallies and wall-clock
     * stamps. Advisory and write-only: the run never reads it back, so
     * it carries wall-clock times without breaking determinism;
     * `ndpext_report watch` and `ndpext_supervise` are the readers.
     */
    void addHeartbeatPath(const std::string& path);

    /**
     * Identity hash binding a checkpoint to the run that produced it:
     * the finalized SystemConfig (every field that shapes the simulated
     * trajectory -- host-only knobs numThreads and output paths are
     * excluded), the policy, the workload identity, and the telemetry
     * collection shape (attached + sampling config), since telemetry
     * state travels inside the image. Resume is valid at any --threads
     * value: the shard decomposition is per stack, not per thread.
     */
    std::uint64_t configHash(const Workload& workload) const;

    const SystemConfig& config() const { return cfg_; }
    PolicyKind policy() const { return policy_; }

  private:
    SystemConfig cfg_;
    PolicyKind policy_;
    Telemetry* telemetry_ = nullptr;
    bool used_ = false;

    /** Checkpoint emission (setCheckpointing). */
    std::string ckptPrefix_;
    std::uint64_t ckptEvery_ = 0;
    /** Validated resume image (setResume). */
    bool resume_ = false;
    std::uint64_t resumeEpoch_ = 0;
    std::vector<std::uint8_t> resumePayload_;
    /** Heartbeat status files rewritten at every epoch barrier. */
    std::vector<std::string> heartbeatPaths_;
};

} // namespace ndpext

#endif // NDPEXT_SYSTEM_NDP_SYSTEM_H
