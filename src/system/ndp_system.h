/**
 * @file
 * NdpSystem wires every component together -- cores, stream cache (or the
 * cacheline baseline datapath), NoC, local DRAM, CXL extended memory, and
 * the host runtime -- runs a workload to completion, and returns the
 * metrics the paper's figures are built from.
 */

#ifndef NDPEXT_SYSTEM_NDP_SYSTEM_H
#define NDPEXT_SYSTEM_NDP_SYSTEM_H

#include <cstdint>
#include <memory>
#include <string>

#include "sim/breakdown.h"
#include "sim/stats.h"
#include "system/system_config.h"
#include "workloads/workload.h"

namespace ndpext {

class Telemetry;

struct EnergyBreakdown
{
    double staticNj = 0.0;
    double ndpDramNj = 0.0;
    double extDramNj = 0.0;
    double cxlLinkNj = 0.0;
    double icnNj = 0.0;
    double sramNj = 0.0;

    double
    totalNj() const
    {
        return staticNj + ndpDramNj + extDramNj + cxlLinkNj + icnNj
            + sramNj;
    }
};

/** Degraded-mode counters (all zero on a fault-free run). */
struct DegradedStats
{
    std::uint64_t linkRetries = 0;
    std::uint64_t retriesExhausted = 0;
    std::uint64_t poisonedReads = 0;
    std::uint64_t poisonEscalations = 0;
    std::uint64_t failedUnitRedirects = 0;
    std::uint64_t dramFaultRefetches = 0;
    std::uint64_t failedUnits = 0;
    std::uint64_t emergencyReconfigs = 0;
    /** Cycles between the first fired unit failure and completion. */
    Cycles cyclesDegraded = 0;

    bool
    any() const
    {
        return linkRetries != 0 || retriesExhausted != 0
            || poisonedReads != 0 || poisonEscalations != 0
            || failedUnitRedirects != 0 || dramFaultRefetches != 0
            || failedUnits != 0 || emergencyReconfigs != 0;
    }
};

struct RunResult
{
    std::string workload;
    std::string policy;
    /** Completion time: the slowest core's final cycle. */
    Cycles cycles = 0;
    std::uint64_t accesses = 0;
    std::uint64_t l1Hits = 0;
    /** Memory-system latency breakdown over L1 misses. */
    LatencyBreakdown bd;
    /** DRAM-cache miss rate over stream accesses (Fig. 7 dots). */
    double missRate = 0.0;
    /** Baseline metadata-cache hit rate (Section VII-A discussion). */
    double metadataHitRate = 1.0;
    EnergyBreakdown energy;
    std::uint64_t writeExceptions = 0;
    std::uint64_t invalidatedRows = 0;
    std::uint64_t survivedRows = 0;
    std::uint64_t reconfigurations = 0;
    std::uint64_t slbMisses = 0;
    DegradedStats degraded;

    /**
     * Engine throughput (advisory, host wall-clock): microseconds spent
     * inside the barrier loop, excluding machine construction and
     * workload preparation. The deterministic companions (events fired,
     * pool high-water marks) live in `stats` under "engine.".
     */
    std::uint64_t engineWallMicros = 0;

    /** Simulated accesses per wall-clock second of the barrier loop. */
    double
    engineAccessesPerSec() const
    {
        return engineWallMicros == 0
            ? 0.0
            : static_cast<double>(accesses) * 1e6
                / static_cast<double>(engineWallMicros);
    }

    /** Average interconnect latency per request in cycles (Fig. 7 bars). */
    double
    avgIcnCycles() const
    {
        return bd.avg(bd.icnIntra + bd.icnInter);
    }
    /** Average end-to-end memory latency per L1 miss, cycles. */
    double
    avgMemLatency() const
    {
        return bd.avg(bd.total());
    }

    StatGroup stats;
};

class NdpSystem
{
  public:
    NdpSystem(const SystemConfig& config, PolicyKind policy);

    /**
     * Run a prepared workload (numCores must equal the unit count).
     * The system is single-use: construct a fresh one per run.
     */
    RunResult run(const Workload& workload);

    /**
     * Attach (or detach with nullptr) a telemetry sink before run().
     * The system registers every component's metric series, samples them
     * at epoch barriers, records epoch/shard spans and packet slices in
     * the trace, and feeds the runtime's decision log. Observer-only:
     * the RunResult is bit-identical with telemetry attached or not
     * (DESIGN.md §6). The caller owns the Telemetry and writes it out.
     */
    void attachTelemetry(Telemetry* telemetry) { telemetry_ = telemetry; }

    const SystemConfig& config() const { return cfg_; }
    PolicyKind policy() const { return policy_; }

  private:
    SystemConfig cfg_;
    PolicyKind policy_;
    Telemetry* telemetry_ = nullptr;
    bool used_ = false;
};

} // namespace ndpext

#endif // NDPEXT_SYSTEM_NDP_SYSTEM_H
