#include "system/ndp_system.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "baselines/nuca_policies.h"
#include "common/logging.h"
#include "common/rng.h"
#include "runtime/static_config.h"
#include "sim/sharded_executor.h"
#include "telemetry/telemetry.h"

namespace ndpext {

namespace {

/** Build the configurator matching the policy. */
std::unique_ptr<Configurator>
makeConfigurator(PolicyKind policy, const SystemConfig& cfg,
                 const StreamCacheController& cache, const NocModel& noc)
{
    const DramTimingParams dram = cfg.unitDram();
    const DramDevice probe(dram, cfg.coreFreqMhz);

    BaselineContext ctx;
    ctx.numUnits = cache.numUnits();
    ctx.rowsPerUnit = cache.rowsPerUnit();
    ctx.rowBytes = cache.rowBytes();
    ctx.dramLatency = probe.rowHitLatency();

    switch (policy) {
      case PolicyKind::NdpExt: {
        ConfigParams params;
        params.numUnits = cache.numUnits();
        params.rowsPerUnit = cache.rowsPerUnit();
        params.rowBytes = cache.rowBytes();
        params.affineCapBytesPerUnit =
            cache.params().affineCapBytesPerUnit;
        params.dramLatency = probe.rowHitLatency();
        params.allowReplication = cfg.allowReplication;
        return std::make_unique<NdpExtConfigurator>(params, noc);
      }
      case PolicyKind::NdpExtStatic:
        return std::make_unique<StaticEqualConfigurator>(cache);
      case PolicyKind::Jigsaw:
        return std::make_unique<JigsawConfigurator>(ctx, noc);
      case PolicyKind::Whirlpool:
        return std::make_unique<WhirlpoolConfigurator>(ctx, noc);
      case PolicyKind::Nexus:
        return std::make_unique<NexusConfigurator>(ctx, noc);
      case PolicyKind::StaticInterleave:
        return std::make_unique<StaticInterleaveConfigurator>(ctx, noc);
    }
    NDP_PANIC("bad policy kind");
}

/**
 * One shard of the simulated machine: the cores of one stack plus
 * private NoC/CXL models carrying that stack's share of the global
 * bandwidth, and (in faulty runs) a private fault injector for the
 * Bernoulli fault classes. Shards share no mutable state between epoch
 * barriers, so they run on any number of threads with identical results.
 */
struct Shard
{
    std::unique_ptr<NocModel> noc;
    std::unique_ptr<ExtendedMemory> ext;
    std::unique_ptr<FaultInjector> fault;
    using HeapItem = std::pair<Cycles, CoreId>;
    std::priority_queue<HeapItem, std::vector<HeapItem>,
                        std::greater<HeapItem>>
        ready;
    Cycles finish = 0;
    /** Core-step events this shard fired (deterministic: the schedule
     *  is fixed per shard, independent of --threads). */
    std::uint64_t steps = 0;
    /**
     * Highest cycle any of this shard's cores reached (shard-private,
     * updated on the shard's own thread): the telemetry execute /
     * barrier-wait split at each barrier. Simulated time, so the split
     * is identical for any --threads value.
     */
    Cycles busyUntil = 0;
};

} // namespace

NdpSystem::NdpSystem(const SystemConfig& config, PolicyKind policy)
    : cfg_(config), policy_(policy)
{
    cfg_.finalize();
    cfg_.cache.cachelineMode = isCachelinePolicy(policy);
}

RunResult
NdpSystem::run(const Workload& workload)
{
    NDP_ASSERT(!used_, "NdpSystem is single-use; construct a fresh one");
    used_ = true;
    NDP_ASSERT(workload.prepared(), "workload not prepared");
    NDP_ASSERT(workload.params().numCores == cfg_.numUnits(),
               "workload cores (", workload.params().numCores,
               ") != NDP units (", cfg_.numUnits(), ")");

    // --- construct the machine ---
    StreamTable table;
    workload.registerStreams(table);

    MeshTopology topo(cfg_.stacksX, cfg_.stacksY, cfg_.unitsX, cfg_.unitsY);
    // The prototype NoC/ext models define the topology and the remap
    // table's distance calculations; shard-private clones below carry the
    // actual traffic.
    NocModel noc(topo, cfg_.noc);
    ExtendedMemory ext(cfg_.cxl, DramTimingParams::ddr5Extended(),
                       cfg_.coreFreqMhz);
    StreamCacheController cache(cfg_.cache, table, noc, ext,
                                cfg_.unitDram(), cfg_.unitCacheBytes,
                                cfg_.coreFreqMhz);
    NdpRuntime runtime(cfg_.runtime, cache,
                       makeConfigurator(policy_, cfg_, cache, noc));

    // Master injector: owns the scheduled-failure timeline (fired at
    // barriers). Each shard gets a private injector with a derived seed
    // for the per-access Bernoulli classes.
    std::unique_ptr<FaultInjector> fault;
    if (cfg_.faults.anyFaults()) {
        for (const UnitFailure& f : cfg_.faults.unitFailures) {
            NDP_ASSERT(f.unit < cfg_.numUnits(),
                       "scheduled failure of nonexistent unit ", f.unit);
        }
        fault = std::make_unique<FaultInjector>(cfg_.faults);
    }

    // --- shards: one per stack, fair share of the global bandwidth ---
    const std::uint32_t numShards = topo.numStacks();
    NocParams shardNoc = cfg_.noc;
    shardNoc.interLinkBytesPerCycle /= numShards;
    CxlParams shardCxl = cfg_.cxl;
    shardCxl.linkBytesPerCycle /= numShards;
    DramTimingParams shardExtDram = DramTimingParams::ddr5Extended();
    shardExtDram.busBytesPerCycle /= numShards;

    std::vector<Shard> shards(numShards);
    std::vector<StreamCacheController::ShardResources> resources(numShards);
    for (std::uint32_t s = 0; s < numShards; ++s) {
        shards[s].noc = std::make_unique<NocModel>(topo, shardNoc);
        shards[s].ext = std::make_unique<ExtendedMemory>(
            shardCxl, shardExtDram, cfg_.coreFreqMhz);
        if (fault != nullptr) {
            FaultParams fp = cfg_.faults;
            fp.unitFailures.clear(); // the master owns the schedule
            fp.seed = mix64(cfg_.faults.seed + s + 1);
            shards[s].fault = std::make_unique<FaultInjector>(fp);
            shards[s].ext->setFaultInjector(shards[s].fault.get());
        }
        resources[s] = {shards[s].noc.get(), shards[s].ext.get(),
                        shards[s].fault.get()};
    }
    cache.enableSharding(resources);

    const std::uint32_t n = cfg_.numUnits();
    std::vector<InOrderCore> cores;
    cores.reserve(n);
    std::vector<std::unique_ptr<AccessGenerator>> gens;
    gens.reserve(n);
    for (CoreId c = 0; c < n; ++c) {
        cores.emplace_back(c, cfg_.core);
        cores.back().memPort().bind(cache.port("cpu_side"));
        gens.push_back(workload.makeGenerator(c));
    }
    for (CoreId c = 0; c < n; ++c) {
        shards[topo.stackOf(c)].ready.emplace(cores[c].now(), c);
    }

    // --- telemetry: register every component's series and hand the
    // cores their shard-private sample buffers. Registration must finish
    // before the first sample; shard-clone NoC/CXL models register the
    // same names and the registry sums them into one series.
    if (telemetry_ != nullptr) {
        MetricRegistry& mr = telemetry_->metrics();
        cache.registerMetrics(mr);
        for (auto& core : cores) {
            core.registerMetrics(mr);
            // Same series under a per-stack prefix: duplicate-name
            // summing turns these into per-stack CPI stacks.
            core.registerCpiMetrics(
                mr, "stack." + std::to_string(topo.stackOf(core.id())));
        }
        for (auto& sh : shards) {
            sh.noc->registerMetrics(mr);
            sh.ext->registerMetrics(mr);
        }

        // Per-stream cost attribution series (ndpext_report topdown).
        // The "none" slot carries kNoStream traffic so the series always
        // sum to the machine totals.
        auto registerStream = [&mr, &cores, &shards,
                               &cache](const std::string& base,
                                       StreamId sid, bool none) {
            mr.registerCounter(base + ".stallCycles",
                               [&cores, sid, none] {
                                   Cycles total = 0;
                                   for (const auto& core : cores) {
                                       total += none
                                           ? core.noStreamStallCycles()
                                           : core.streamStallCycles(sid);
                                   }
                                   return double(total);
                               });
            struct BdField
            {
                const char* name;
                Cycles LatencyBreakdown::* field;
            };
            static const BdField kFields[] = {
                {"metadata", &LatencyBreakdown::metadata},
                {"icnIntra", &LatencyBreakdown::icnIntra},
                {"icnInter", &LatencyBreakdown::icnInter},
                {"dramCache", &LatencyBreakdown::dramCache},
                {"extMem", &LatencyBreakdown::extMem},
            };
            for (const BdField& f : kFields) {
                mr.registerCounter(
                    base + ".serviceCycles." + f.name,
                    [&cache, sid, none, field = f.field] {
                        const LatencyBreakdown bd = none
                            ? cache.nonStreamBreakdown()
                            : cache.streamBreakdown(sid);
                        return double(bd.*field);
                    });
            }
            mr.registerCounter(base + ".energyNj.icn",
                               [&shards, sid, none] {
                                   double total = 0.0;
                                   for (const auto& sh : shards) {
                                       total += none
                                           ? sh.noc->unattributedEnergyNj()
                                           : sh.noc->streamEnergyNj(sid);
                                   }
                                   return total;
                               });
            mr.registerCounter(
                base + ".energyNj.cxlLink", [&shards, sid, none] {
                    double total = 0.0;
                    for (const auto& sh : shards) {
                        total += none
                            ? sh.ext->unattributedLinkEnergyNj()
                            : sh.ext->streamLinkEnergyNj(sid);
                    }
                    return total;
                });
            mr.registerCounter(
                base + ".energyNj.extDram", [&shards, sid, none] {
                    double total = 0.0;
                    for (const auto& sh : shards) {
                        total += none
                            ? sh.ext->unattributedDramEnergyNj()
                            : sh.ext->streamDramEnergyNj(sid);
                    }
                    return total;
                });
            mr.registerCounter(
                base + ".energyNj.dramCache", [&cache, sid, none] {
                    return none ? cache.nonStreamDramCacheEnergyNj()
                                : cache.streamDramCacheEnergyNj(sid);
                });
            mr.registerCounter(base + ".energyNj.sram",
                               [&cache, sid, none] {
                                   return none
                                       ? cache.nonStreamSramEnergyNj()
                                       : cache.streamSramEnergyNj(sid);
                               });
        };
        for (const StreamConfig& scfg : table.all()) {
            registerStream("stream." + std::to_string(scfg.sid), scfg.sid,
                           false);
        }
        registerStream("stream.none", kNoStream, true);
        runtime.registerMetrics(mr);
        runtime.setTelemetry(telemetry_);
        telemetry_->initPacketSampling(n);
        for (CoreId c = 0; c < n; ++c) {
            cores[c].setTelemetrySink(telemetry_->packetBuffer(c));
        }
        for (std::uint32_t s = 0; s < numShards; ++s) {
            std::string tname = "shard";
            tname += std::to_string(s);
            telemetry_->trace().threadName(TraceWriter::kPidShards, s,
                                           tname);
        }
    }

    runtime.start();

    // --- barrier loop: shards advance in parallel to the next global
    // event (epoch boundary or scheduled failure); the runtime acts at
    // the barrier, then the interval repeats. The decomposition is fixed
    // per stack, so any --threads value produces identical results.
    const std::uint32_t threads = std::min<std::uint32_t>(
        std::max<std::uint32_t>(cfg_.numThreads, 1), numShards);
    ShardedExecutor exec(threads);

    Cycles next_epoch = cfg_.runtime.epochCycles;
    Cycles next_failure =
        fault != nullptr ? fault->nextFailureAt() : FaultInjector::kNoFailure;
    Cycles interval_start = 0;
    Cycles epoch_start = 0;
    std::uint64_t epoch_idx = 0;
    const auto engine_start = std::chrono::steady_clock::now();
    for (;;) {
        const Cycles sync = std::min(next_epoch, next_failure);
        exec.forEachShard(numShards, [&](std::uint32_t s) {
            Shard& sh = shards[s];
            while (!sh.ready.empty() && sh.ready.top().first < sync) {
                const CoreId c = sh.ready.top().second;
                sh.ready.pop();
                ++sh.steps;
                if (cores[c].step(*gens[c])) {
                    sh.ready.emplace(cores[c].now(), c);
                } else {
                    sh.finish = std::max(sh.finish, cores[c].now());
                }
                sh.busyUntil = std::max(sh.busyUntil, cores[c].now());
            }
        });
        cache.applyDeferredWriteExceptions();

        bool active = false;
        for (const Shard& sh : shards) {
            active = active || !sh.ready.empty();
        }

        // Barrier-side telemetry: drain shard-private packet samples in
        // core-id order and split each shard's interval into execute /
        // barrier-wait (simulated-time imbalance, thread-count blind).
        if (telemetry_ != nullptr) {
            telemetry_->drainPacketSamples();
            TraceWriter& tw = telemetry_->trace();
            for (std::uint32_t s = 0; s < numShards; ++s) {
                const Cycles busy = std::max(
                    interval_start, std::min(shards[s].busyUntil, sync));
                if (busy > interval_start) {
                    tw.completeSpan("shard", "execute",
                                    TraceWriter::kPidShards, s,
                                    interval_start, busy - interval_start);
                }
                if (active && sync > busy) {
                    tw.completeSpan("shard", "barrier_wait",
                                    TraceWriter::kPidShards, s, busy,
                                    sync - busy);
                }
            }
            interval_start = sync;
        }

        if (!active) {
            break;
        }
        if (next_failure <= next_epoch) {
            // Failures fire before a coinciding epoch boundary.
            runtime.onUnitFailures(fault->popFailuresUpTo(next_failure),
                                   next_failure);
            next_failure = fault->nextFailureAt();
        } else {
            if (telemetry_ != nullptr) {
                // Snapshot before onEpochEnd clears the sampler counters.
                telemetry_->sampleEpoch(epoch_idx, next_epoch);
                std::string args = "{\"epoch\":";
                args += std::to_string(epoch_idx);
                args += '}';
                telemetry_->trace().completeSpan(
                    "epoch", "epoch", TraceWriter::kPidRuntime, 0,
                    epoch_start, next_epoch - epoch_start, args);
                epoch_start = next_epoch;
                ++epoch_idx;
            }
            runtime.onEpochEnd(next_epoch);
            next_epoch += cfg_.runtime.epochCycles;
        }
    }
    const auto engine_end = std::chrono::steady_clock::now();
    Cycles finish = 0;
    for (const Shard& sh : shards) {
        finish = std::max(finish, sh.finish);
    }
    // Final partial epoch: one last metric sample + epoch span.
    if (telemetry_ != nullptr) {
        telemetry_->sampleEpoch(epoch_idx, finish);
        if (finish > epoch_start) {
            std::string args = "{\"epoch\":";
            args += std::to_string(epoch_idx);
            args += '}';
            telemetry_->trace().completeSpan(
                "epoch", "epoch", TraceWriter::kPidRuntime, 0, epoch_start,
                finish - epoch_start, args);
        }
    }

    // --- collect results (sums over shard-private models) ---
    RunResult res;
    res.workload = workload.name();
    res.policy = policyName(policy_);
    res.cycles = finish;
    res.bd = cache.breakdown();
    res.missRate = cache.missRate();
    res.metadataHitRate = cache.metadataHitRate();
    res.writeExceptions = cache.writeExceptions();
    res.invalidatedRows = cache.invalidatedRows();
    res.survivedRows = cache.survivedRows();
    res.reconfigurations = runtime.reconfigurations();
    res.slbMisses = cache.slbMissTotal();
    for (const Shard& sh : shards) {
        res.degraded.linkRetries += sh.ext->linkRetries();
        res.degraded.retriesExhausted += sh.ext->retriesExhausted();
        res.degraded.poisonedReads += sh.ext->poisonedReads();
    }
    res.degraded.poisonEscalations = cache.poisonEscalations();
    res.degraded.failedUnitRedirects = cache.failedUnitRedirects();
    res.degraded.dramFaultRefetches = cache.dramFaultRefetches();
    res.degraded.failedUnits = runtime.failedUnits();
    res.degraded.emergencyReconfigs = runtime.emergencyReconfigurations();
    if (fault != nullptr
        && fault->firstFailureAt() != FaultInjector::kNoFailure
        && finish > fault->firstFailureAt()) {
        res.degraded.cyclesDegraded = finish - fault->firstFailureAt();
    }
    for (const auto& core : cores) {
        res.accesses += core.accesses();
        res.l1Hits += core.l1Hits();
        core.report(res.stats, "core" + std::to_string(core.id()));
    }

    // Machine-wide CPI stack (fixed-order sums over cores, so the values
    // are bit-identical for any --threads value; ndpext_report topdown
    // checks the bucket-sum invariant against cores.memStallCycles).
    {
        CoreStallBreakdown stall;
        Cycles compute = 0;
        Cycles l1 = 0;
        Cycles mem_stall = 0;
        for (const auto& core : cores) {
            const CoreStallBreakdown& s = core.stallBreakdown();
            stall.metadata += s.metadata;
            stall.icnIntra += s.icnIntra;
            stall.icnInter += s.icnInter;
            stall.dramCache += s.dramCache;
            stall.extMem += s.extMem;
            stall.mshrQueue += s.mshrQueue;
            compute += core.computeCycles();
            l1 += core.l1Cycles();
            mem_stall += core.memStallCycles();
        }
        res.stats.set("cores.computeCycles", static_cast<double>(compute));
        res.stats.set("cores.l1Cycles", static_cast<double>(l1));
        res.stats.set("cores.memStallCycles",
                      static_cast<double>(mem_stall));
        stall.report(res.stats, "cores.stall");
    }

    // Engine throughput telemetry. Event and pool counters are
    // deterministic (thread-count blind) and gate nothing; the wall
    // clock is host-dependent and advisory (the "Micros" suffix excludes
    // it from bit-identity checks).
    {
        res.engineWallMicros = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                engine_end - engine_start)
                .count());
        std::uint64_t steps = 0;
        for (const Shard& sh : shards) {
            steps += sh.steps;
        }
        std::uint64_t pool_high = cache.packetPoolHighWater();
        std::uint64_t pool_alloc = cache.packetPoolAllocated();
        for (const auto& core : cores) {
            pool_high += core.packetPool().highWater();
            pool_alloc += core.packetPool().allocated();
        }
        res.stats.set("engine.eventsFired", static_cast<double>(steps));
        res.stats.set("engine.packetPool.highWater",
                      static_cast<double>(pool_high));
        res.stats.set("engine.packetPool.allocated",
                      static_cast<double>(pool_alloc));
        res.stats.set("engine.wallMicros",
                      static_cast<double>(res.engineWallMicros));
    }

    // Per-stream cost attribution (mirrors the telemetry series so
    // --stats-json carries them too).
    auto addStreamStats = [&](const std::string& base, StreamId sid,
                              bool none) {
        Cycles stall = 0;
        for (const auto& core : cores) {
            stall += none ? core.noStreamStallCycles()
                          : core.streamStallCycles(sid);
        }
        res.stats.set(base + ".stallCycles", static_cast<double>(stall));
        const LatencyBreakdown bd = none ? cache.nonStreamBreakdown()
                                         : cache.streamBreakdown(sid);
        res.stats.set(base + ".serviceCycles.metadata",
                      static_cast<double>(bd.metadata));
        res.stats.set(base + ".serviceCycles.icnIntra",
                      static_cast<double>(bd.icnIntra));
        res.stats.set(base + ".serviceCycles.icnInter",
                      static_cast<double>(bd.icnInter));
        res.stats.set(base + ".serviceCycles.dramCache",
                      static_cast<double>(bd.dramCache));
        res.stats.set(base + ".serviceCycles.extMem",
                      static_cast<double>(bd.extMem));
        double icn = 0.0;
        double link = 0.0;
        double ext_dram = 0.0;
        for (const Shard& sh : shards) {
            icn += none ? sh.noc->unattributedEnergyNj()
                        : sh.noc->streamEnergyNj(sid);
            link += none ? sh.ext->unattributedLinkEnergyNj()
                         : sh.ext->streamLinkEnergyNj(sid);
            ext_dram += none ? sh.ext->unattributedDramEnergyNj()
                             : sh.ext->streamDramEnergyNj(sid);
        }
        res.stats.set(base + ".energyNj.icn", icn);
        res.stats.set(base + ".energyNj.cxlLink", link);
        res.stats.set(base + ".energyNj.extDram", ext_dram);
        res.stats.set(base + ".energyNj.dramCache",
                      none ? cache.nonStreamDramCacheEnergyNj()
                           : cache.streamDramCacheEnergyNj(sid));
        res.stats.set(base + ".energyNj.sram",
                      none ? cache.nonStreamSramEnergyNj()
                           : cache.streamSramEnergyNj(sid));
    };
    for (const StreamConfig& scfg : table.all()) {
        addStreamStats("stream." + std::to_string(scfg.sid), scfg.sid,
                       false);
    }
    addStreamStats("stream.none", kNoStream, true);

    const double seconds = static_cast<double>(finish)
        / (static_cast<double>(cfg_.coreFreqMhz) * 1e6);
    res.energy.staticNj = (cfg_.staticWattsPerUnit * n
                           + cfg_.staticWattsExt)
        * seconds * 1e9;
    res.energy.ndpDramNj = cache.dramCacheEnergyNj();
    res.energy.sramNj = cache.sramEnergyNj();
    for (const Shard& sh : shards) {
        res.energy.extDramNj += sh.ext->dramEnergyNj();
        res.energy.cxlLinkNj += sh.ext->linkEnergyNj();
        res.energy.icnNj += sh.noc->energyNj();
    }

    cache.report(res.stats, "cache");
    for (const Shard& sh : shards) {
        // report() uses add(), so shard instances accumulate.
        sh.noc->report(res.stats, "noc");
        sh.ext->report(res.stats, "ext");
    }
    runtime.report(res.stats, "runtime");
    if (fault != nullptr) {
        fault->report(res.stats, "fault");
        for (const Shard& sh : shards) {
            sh.fault->report(res.stats, "fault");
        }
        res.stats.set("degraded.cycles",
                      static_cast<double>(res.degraded.cyclesDegraded));
    }
    res.stats.set("cycles", static_cast<double>(finish));
    return res;
}

} // namespace ndpext
