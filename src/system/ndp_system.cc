#include "system/ndp_system.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "baselines/nuca_policies.h"
#include "common/atomic_file.h"
#include "common/logging.h"
#include "common/rng.h"
#include "runtime/static_config.h"
#include "serving/serving_workload.h"
#include "sim/checkpoint.h"
#include "sim/sharded_executor.h"
#include "telemetry/json_out.h"
#include "telemetry/telemetry.h"

namespace ndpext {

namespace {

/** Build the configurator matching the policy. */
std::unique_ptr<Configurator>
makeConfigurator(PolicyKind policy, const SystemConfig& cfg,
                 const StreamCacheController& cache, const NocModel& noc)
{
    const auto probe =
        createMemBackend(cfg.unitMemBackend(), cfg.coreFreqMhz);

    BaselineContext ctx;
    ctx.numUnits = cache.numUnits();
    ctx.rowsPerUnit = cache.rowsPerUnit();
    ctx.rowBytes = cache.rowBytes();
    ctx.dramLatency = probe->rowHitLatency();

    switch (policy) {
      case PolicyKind::NdpExt: {
        ConfigParams params;
        params.numUnits = cache.numUnits();
        params.rowsPerUnit = cache.rowsPerUnit();
        params.rowBytes = cache.rowBytes();
        params.affineCapBytesPerUnit =
            cache.params().affineCapBytesPerUnit;
        params.dramLatency = probe->rowHitLatency();
        params.allowReplication = cfg.allowReplication;
        params.budgetIterations = cfg.runtime.solverBudgetIters;
        params.budgetMicros = cfg.runtime.solverBudgetMicros;
        return std::make_unique<NdpExtConfigurator>(params, noc);
      }
      case PolicyKind::NdpExtStatic:
        return std::make_unique<StaticEqualConfigurator>(cache);
      case PolicyKind::Jigsaw:
        return std::make_unique<JigsawConfigurator>(ctx, noc);
      case PolicyKind::Whirlpool:
        return std::make_unique<WhirlpoolConfigurator>(ctx, noc);
      case PolicyKind::Nexus:
        return std::make_unique<NexusConfigurator>(ctx, noc);
      case PolicyKind::StaticInterleave:
        return std::make_unique<StaticInterleaveConfigurator>(ctx, noc);
    }
    NDP_PANIC("bad policy kind");
}

/**
 * One shard of the simulated machine: the cores of one stack plus
 * private NoC/CXL models carrying that stack's share of the global
 * bandwidth, and (in faulty runs) a private fault injector for the
 * Bernoulli fault classes. Shards share no mutable state between epoch
 * barriers, so they run on any number of threads with identical results.
 */
struct Shard
{
    std::unique_ptr<NocModel> noc;
    std::unique_ptr<ExtendedMemory> ext;
    std::unique_ptr<FaultInjector> fault;
    using HeapItem = std::pair<Cycles, CoreId>;
    std::priority_queue<HeapItem, std::vector<HeapItem>,
                        std::greater<HeapItem>>
        ready;
    Cycles finish = 0;
    /** Core-step events this shard fired (deterministic: the schedule
     *  is fixed per shard, independent of --threads). */
    std::uint64_t steps = 0;
    /**
     * Highest cycle any of this shard's cores reached (shard-private,
     * updated on the shard's own thread): the telemetry execute /
     * barrier-wait split at each barrier. Simulated time, so the split
     * is identical for any --threads value.
     */
    Cycles busyUntil = 0;
};

} // namespace

NdpSystem::NdpSystem(const SystemConfig& config, PolicyKind policy)
    : cfg_(config), policy_(policy)
{
    cfg_.finalize();
    cfg_.cache.cachelineMode = isCachelinePolicy(policy);
}

std::uint64_t
NdpSystem::configHash(const Workload& workload) const
{
    // Canonical little-endian encoding of every field that shapes the
    // simulated trajectory. Extending any param struct requires adding
    // the new field here (stale checkpoints then fail the hash check,
    // which is the safe direction).
    ckpt::Writer w;
    w.u32(cfg_.stacksX);
    w.u32(cfg_.stacksY);
    w.u32(cfg_.unitsX);
    w.u32(cfg_.unitsY);
    w.u64(cfg_.coreFreqMhz);
    w.u64(cfg_.core.l1HitCycles);
    w.u64(cfg_.core.l1dCapacityBytes);
    w.u32(cfg_.core.l1dWays);
    w.u32(cfg_.core.lineBytes);
    w.u32(cfg_.core.mshrs);
    w.u32(static_cast<std::uint32_t>(cfg_.memType));
    // Backend identity per memory role: a checkpoint taken under one
    // backend (or tuning) must not resume under another.
    cfg_.unitMemBackend().hashInto(w);
    cfg_.extMemBackend().hashInto(w);
    w.u64(cfg_.unitCacheBytes);
    const StreamCacheParams& sc = cfg_.cache;
    w.u32(sc.affineBlockBytes);
    w.u64(sc.affineCapBytesPerUnit);
    w.u32(sc.affineWays);
    w.u32(sc.indirectWays);
    w.b(sc.indirectWayPrediction);
    w.u64(sc.ataCycles);
    w.u32(sc.slbEntries);
    w.u64(sc.slbHitCycles);
    w.u64(sc.slbMissCycles);
    w.u64(sc.unitHandlerCycles);
    w.u64(sc.writeExceptionCycles);
    w.u32(sc.reqBytes);
    w.u32(sc.rspBytes);
    w.d(sc.slbPjPerLookup);
    w.d(sc.ataPjPerLookup);
    w.u32(sc.samplersPerUnit);
    w.u32(sc.sampler.kSets);
    w.u32(sc.sampler.numCapacities);
    w.u64(sc.sampler.minCapacityBytes);
    w.u64(sc.sampler.maxCapacityBytes);
    w.u32(static_cast<std::uint32_t>(sc.remapMode));
    w.b(sc.cachelineMode);
    w.u64(sc.metadataCacheBytes);
    w.u32(sc.metadataGranuleBytes);
    w.u32(sc.metadataCacheWays);
    w.u64(sc.metadataHitCycles);
    w.u64(cfg_.noc.intraHopCycles);
    w.u64(cfg_.noc.interHopCycles);
    w.d(cfg_.noc.interLinkBytesPerCycle);
    w.d(cfg_.noc.intraPjPerBit);
    w.d(cfg_.noc.interPjPerBit);
    w.u64(cfg_.cxl.linkLatencyCycles);
    w.d(cfg_.cxl.linkBytesPerCycle);
    w.d(cfg_.cxl.pjPerBit);
    w.u64(cfg_.runtime.epochCycles);
    w.u32(static_cast<std::uint32_t>(cfg_.runtime.method));
    w.u64(cfg_.runtime.partialUntilCycles);
    w.u32(cfg_.runtime.samplersPerUnit);
    w.u64(cfg_.runtime.minSamplerAccesses);
    w.b(cfg_.runtime.solverWarmStart);
    w.u64(cfg_.runtime.solverBudgetIters);
    w.u64(cfg_.runtime.solverBudgetMicros);
    w.b(cfg_.allowReplication);
    w.u64(cfg_.faults.seed);
    w.d(cfg_.faults.cxlTransientProb);
    w.d(cfg_.faults.cxlPoisonProb);
    w.d(cfg_.faults.dramBitProb);
    w.u64(cfg_.faults.unitFailures.size());
    for (const UnitFailure& f : cfg_.faults.unitFailures) {
        w.u32(f.unit);
        w.u64(f.at);
    }
    w.u32(cfg_.faults.maxLinkRetries);
    w.u64(cfg_.faults.retryBackoffCycles);
    w.u64(cfg_.faults.retryBackoffCapCycles);
    w.u64(cfg_.faults.poisonPenaltyCycles);
    w.d(cfg_.staticWattsPerUnit);
    w.d(cfg_.staticWattsExt);
    w.u32(static_cast<std::uint32_t>(policy_));
    w.str(workload.name());
    w.u32(workload.params().numCores);
    w.u64(workload.params().footprintBytes);
    w.u64(workload.params().accessesPerCore);
    w.u64(workload.params().seed);
    // Workload-specific identity (e.g. the full serving tenant config).
    workload.hashExtra(w);
    // Telemetry state travels inside the image, so its collection shape
    // is part of the identity (its output paths are not).
    w.b(telemetry_ != nullptr);
    if (telemetry_ != nullptr) {
        const TelemetryConfig& tc = telemetry_->config();
        w.u64(tc.packetSampleEvery);
        w.u64(tc.ringCapacity);
        w.d(tc.latencyHistMax);
        w.u64(tc.latencyHistBuckets);
        w.b(tc.traceRequests);
        w.u64(tc.traceSlowK);
        w.u64(tc.traceUniformK);
        w.u64(tc.traceSeed);
    }
    return ckpt::fnv1a(w.bytes());
}

void
NdpSystem::addHeartbeatPath(const std::string& path)
{
    if (path.empty()
        || std::find(heartbeatPaths_.begin(), heartbeatPaths_.end(), path)
            != heartbeatPaths_.end()) {
        return;
    }
    heartbeatPaths_.push_back(path);
}

bool
NdpSystem::setResume(const std::string& path, const Workload& workload,
                     std::string* error)
{
    ckpt::CheckpointHeader header;
    if (!ckpt::loadCheckpoint(path, configHash(workload), &header,
                              &resumePayload_, error)) {
        return false;
    }
    resume_ = true;
    resumeEpoch_ = header.epoch;
    return true;
}

RunResult
NdpSystem::run(const Workload& workload)
{
    NDP_ASSERT(!used_, "NdpSystem is single-use; construct a fresh one");
    used_ = true;
    NDP_ASSERT(workload.prepared(), "workload not prepared");
    NDP_ASSERT(workload.params().numCores == cfg_.numUnits(),
               "workload cores (", workload.params().numCores,
               ") != NDP units (", cfg_.numUnits(), ")");

    // --- construct the machine ---
    StreamTable table;
    workload.registerStreams(table);

    MeshTopology topo(cfg_.stacksX, cfg_.stacksY, cfg_.unitsX, cfg_.unitsY);
    // The prototype NoC/ext models define the topology and the remap
    // table's distance calculations; shard-private clones below carry the
    // actual traffic.
    NocModel noc(topo, cfg_.noc);
    ExtendedMemory ext(cfg_.cxl, cfg_.extMemBackend(), cfg_.coreFreqMhz);
    StreamCacheController cache(cfg_.cache, table, noc, ext,
                                cfg_.unitMemBackend(), cfg_.unitCacheBytes,
                                cfg_.coreFreqMhz);
    NdpRuntime runtime(cfg_.runtime, cache,
                       makeConfigurator(policy_, cfg_, cache, noc));

    // Master injector: owns the scheduled-failure timeline (fired at
    // barriers). Each shard gets a private injector with a derived seed
    // for the per-access Bernoulli classes.
    std::unique_ptr<FaultInjector> fault;
    if (cfg_.faults.anyFaults()) {
        for (const UnitFailure& f : cfg_.faults.unitFailures) {
            NDP_ASSERT(f.unit < cfg_.numUnits(),
                       "scheduled failure of nonexistent unit ", f.unit);
        }
        fault = std::make_unique<FaultInjector>(cfg_.faults);
    }

    // --- shards: one per stack, fair share of the global bandwidth ---
    const std::uint32_t numShards = topo.numStacks();
    NocParams shardNoc = cfg_.noc;
    shardNoc.interLinkBytesPerCycle /= numShards;
    CxlParams shardCxl = cfg_.cxl;
    shardCxl.linkBytesPerCycle /= numShards;
    MemBackendConfig shardExtDram = cfg_.extMemBackend();
    shardExtDram.timing.busBytesPerCycle /= numShards;

    std::vector<Shard> shards(numShards);
    std::vector<StreamCacheController::ShardResources> resources(numShards);
    for (std::uint32_t s = 0; s < numShards; ++s) {
        shards[s].noc = std::make_unique<NocModel>(topo, shardNoc);
        shards[s].ext = std::make_unique<ExtendedMemory>(
            shardCxl, shardExtDram, cfg_.coreFreqMhz);
        if (fault != nullptr) {
            FaultParams fp = cfg_.faults;
            fp.unitFailures.clear(); // the master owns the schedule
            fp.seed = mix64(cfg_.faults.seed + s + 1);
            shards[s].fault = std::make_unique<FaultInjector>(fp);
            shards[s].ext->setFaultInjector(shards[s].fault.get());
        }
        resources[s] = {shards[s].noc.get(), shards[s].ext.get(),
                        shards[s].fault.get()};
    }
    cache.enableSharding(resources);

    const std::uint32_t n = cfg_.numUnits();
    std::vector<InOrderCore> cores;
    cores.reserve(n);
    std::vector<std::unique_ptr<AccessGenerator>> gens;
    gens.reserve(n);
    for (CoreId c = 0; c < n; ++c) {
        cores.emplace_back(c, cfg_.core);
        cores.back().memPort().bind(cache.port("cpu_side"));
        gens.push_back(workload.makeGenerator(c));
    }

    // --- multi-tenant serving: QoS plumbing and SLO aggregation ---
    const auto* servingWl = dynamic_cast<const ServingWorkload*>(&workload);
    std::vector<const ServingGenerator*> servingGens;
    /** Machine-wide per-tenant latency histograms (stable addresses for
     *  the metric registry; refreshed from the per-core histograms at
     *  every epoch sample and at the end of the run). */
    std::vector<Histogram> tenantLatency;
    if (servingWl != nullptr) {
        for (const auto& g : gens) {
            const auto* sg = dynamic_cast<const ServingGenerator*>(g.get());
            NDP_ASSERT(sg != nullptr,
                       "serving workload built a non-serving generator");
            servingGens.push_back(sg);
        }
        const std::vector<TenantSpec>& tenants =
            servingWl->serving().tenants;
        tenantLatency.reserve(tenants.size());
        for (std::size_t t = 0; t < tenants.size(); ++t) {
            tenantLatency.push_back(servingGens[0]->tenantStats(t).latency);
        }
        // Reserved carve-outs: percent of a unit's rows, attached to
        // every stream of the tenant so Algorithm 1 can enforce the
        // per-class capacity constraint.
        std::vector<StreamQos> qos;
        for (const StreamConfig& scfg : table.all()) {
            const std::uint32_t tn = servingWl->streamTenant(scfg.sid);
            const TenantSpec& spec = tenants[tn];
            StreamQos q;
            q.sid = scfg.sid;
            q.tenant = tn;
            q.reserved = spec.reserved;
            q.reservedRowsPerUnit = spec.reserved
                ? static_cast<std::uint32_t>(
                      static_cast<std::uint64_t>(cache.rowsPerUnit())
                      * spec.reservePct / 100)
                : 0;
            qos.push_back(q);
        }
        runtime.setStreamQos(qos);
    }
    const auto refreshTenantLatency = [&]() {
        for (std::size_t t = 0; t < tenantLatency.size(); ++t) {
            tenantLatency[t] = servingGens[0]->tenantStats(t).latency;
            for (std::size_t c = 1; c < servingGens.size(); ++c) {
                mergeHistogram(&tenantLatency[t],
                               servingGens[c]->tenantStats(t).latency);
            }
        }
    };
    // A core leaves the ready heap for good when its generator is
    // exhausted; tracked per core (bytes, not vector<bool> bits: shard
    // threads write their own cores' entries concurrently) so a
    // checkpoint can record which cores are still running and resume
    // can rebuild the heaps. Heaps are filled after the resume decision.
    std::vector<std::uint8_t> alive(n, 1);

    // --- telemetry: register every component's series and hand the
    // cores their shard-private sample buffers. Registration must finish
    // before the first sample; shard-clone NoC/CXL models register the
    // same names and the registry sums them into one series.
    if (telemetry_ != nullptr) {
        MetricRegistry& mr = telemetry_->metrics();
        cache.registerMetrics(mr);
        for (auto& core : cores) {
            core.registerMetrics(mr);
            // Same series under a per-stack prefix: duplicate-name
            // summing turns these into per-stack CPI stacks.
            core.registerCpiMetrics(
                mr, "stack." + std::to_string(topo.stackOf(core.id())));
        }
        for (auto& sh : shards) {
            sh.noc->registerMetrics(mr);
            sh.ext->registerMetrics(mr);
        }

        // Per-stream cost attribution series (ndpext_report topdown).
        // The "none" slot carries kNoStream traffic so the series always
        // sum to the machine totals.
        auto registerStream = [&mr, &cores, &shards,
                               &cache](const std::string& base,
                                       StreamId sid, bool none) {
            mr.registerCounter(base + ".stallCycles",
                               [&cores, sid, none] {
                                   Cycles total = 0;
                                   for (const auto& core : cores) {
                                       total += none
                                           ? core.noStreamStallCycles()
                                           : core.streamStallCycles(sid);
                                   }
                                   return double(total);
                               });
            struct BdField
            {
                const char* name;
                Cycles LatencyBreakdown::* field;
            };
            static const BdField kFields[] = {
                {"metadata", &LatencyBreakdown::metadata},
                {"icnIntra", &LatencyBreakdown::icnIntra},
                {"icnInter", &LatencyBreakdown::icnInter},
                {"dramCache", &LatencyBreakdown::dramCache},
                {"extMem", &LatencyBreakdown::extMem},
            };
            for (const BdField& f : kFields) {
                mr.registerCounter(
                    base + ".serviceCycles." + f.name,
                    [&cache, sid, none, field = f.field] {
                        const LatencyBreakdown bd = none
                            ? cache.nonStreamBreakdown()
                            : cache.streamBreakdown(sid);
                        return double(bd.*field);
                    });
            }
            mr.registerCounter(base + ".energyNj.icn",
                               [&shards, sid, none] {
                                   double total = 0.0;
                                   for (const auto& sh : shards) {
                                       total += none
                                           ? sh.noc->unattributedEnergyNj()
                                           : sh.noc->streamEnergyNj(sid);
                                   }
                                   return total;
                               });
            mr.registerCounter(
                base + ".energyNj.cxlLink", [&shards, sid, none] {
                    double total = 0.0;
                    for (const auto& sh : shards) {
                        total += none
                            ? sh.ext->unattributedLinkEnergyNj()
                            : sh.ext->streamLinkEnergyNj(sid);
                    }
                    return total;
                });
            mr.registerCounter(
                base + ".energyNj.extDram", [&shards, sid, none] {
                    double total = 0.0;
                    for (const auto& sh : shards) {
                        total += none
                            ? sh.ext->unattributedDramEnergyNj()
                            : sh.ext->streamDramEnergyNj(sid);
                    }
                    return total;
                });
            mr.registerCounter(
                base + ".energyNj.dramCache", [&cache, sid, none] {
                    return none ? cache.nonStreamDramCacheEnergyNj()
                                : cache.streamDramCacheEnergyNj(sid);
                });
            mr.registerCounter(base + ".energyNj.sram",
                               [&cache, sid, none] {
                                   return none
                                       ? cache.nonStreamSramEnergyNj()
                                       : cache.streamSramEnergyNj(sid);
                               });
        };
        for (const StreamConfig& scfg : table.all()) {
            registerStream("stream." + std::to_string(scfg.sid), scfg.sid,
                           false);
        }
        registerStream("stream.none", kNoStream, true);
        if (servingWl != nullptr) {
            const std::vector<TenantSpec>& tenants =
                servingWl->serving().tenants;
            for (std::size_t t = 0; t < tenants.size(); ++t) {
                const std::string base = "tenant." + tenants[t].name;
                const auto sumStat =
                    [&servingGens, t](std::uint64_t TenantServingStats::* f) {
                        std::uint64_t total = 0;
                        for (const ServingGenerator* g : servingGens) {
                            total += g->tenantStats(t).*f;
                        }
                        return static_cast<double>(total);
                    };
                mr.registerCounter(base + ".arrivals", [sumStat] {
                    return sumStat(&TenantServingStats::arrivals);
                });
                mr.registerCounter(base + ".started", [sumStat] {
                    return sumStat(&TenantServingStats::started);
                });
                mr.registerCounter(base + ".retired", [sumStat] {
                    return sumStat(&TenantServingStats::retired);
                });
                mr.registerCounter(base + ".sloViolations", [sumStat] {
                    return sumStat(&TenantServingStats::sloViolations);
                });
                mr.registerHistogram(base + ".latency",
                                     &tenantLatency[t]);
                // Static per-tenant facts, exported so `ndpext_report
                // slo` can print targets without the --stats-json file.
                mr.registerGauge(
                    base + ".sloCycles",
                    [v = static_cast<double>(tenants[t].sloCycles)] {
                        return v;
                    });
                mr.registerGauge(base + ".reserved",
                                 [v = tenants[t].reserved ? 1.0 : 0.0] {
                                     return v;
                                 });
            }
        }
        runtime.registerMetrics(mr);
        runtime.setTelemetry(telemetry_);
        telemetry_->initPacketSampling(n);
        for (CoreId c = 0; c < n; ++c) {
            cores[c].setTelemetrySink(telemetry_->packetBuffer(c));
        }
        // End-to-end request tracing: serving runs only (non-serving
        // runs have no request boundaries; their per-packet visibility
        // comes from the existing packet sampler).
        if (servingWl != nullptr) {
            std::vector<RequestTraceCollector::TenantMeta> metas;
            for (const TenantSpec& spec : servingWl->serving().tenants) {
                metas.push_back({spec.name, spec.reserved, spec.sloCycles});
            }
            telemetry_->initRequestTracing(n, std::move(metas));
            for (CoreId c = 0; c < n; ++c) {
                cores[c].setRequestTraceSink(telemetry_->requestBuffer(c));
            }
        }
        for (std::uint32_t s = 0; s < numShards; ++s) {
            std::string tname = "shard";
            tname += std::to_string(s);
            telemetry_->trace().threadName(TraceWriter::kPidShards, s,
                                           tname);
        }
    }

    // --- heartbeat: small advisory status file(s), atomically rewritten
    // at every epoch barrier so `ndpext_report watch` and the supervisor
    // can follow progress/ETA without touching the run. Write-only from
    // the run's perspective, so the wall-clock stamps cannot perturb
    // determinism.
    const auto wallUnixMs = [] {
        return static_cast<std::int64_t>(
            std::chrono::duration_cast<std::chrono::milliseconds>(
                std::chrono::system_clock::now().time_since_epoch())
                .count());
    };
    const std::int64_t hbStartMs = wallUnixMs();
    const Cycles hbStartCycles = resumeEpoch_ * cfg_.runtime.epochCycles;
    const auto writeHeartbeat = [&](std::uint64_t epoch, Cycles cycles,
                                    bool done) {
        if (heartbeatPaths_.empty()) {
            return;
        }
        std::uint64_t acc = 0;
        for (const auto& core : cores) {
            acc += core.accesses();
        }
        std::uint64_t totalHint = 0;
        if (servingWl == nullptr) {
            totalHint =
                static_cast<std::uint64_t>(workload.params().numCores)
                * workload.params().accessesPerCore;
        }
        const Cycles horizon =
            servingWl != nullptr ? servingWl->horizon() : 0;
        for (const std::string& path : heartbeatPaths_) {
            std::string why;
            const bool ok = writeFileAtomic(
                path,
                [&](std::ostream& os) {
                    os << "{\"done\":" << (done ? "true" : "false")
                       << ",\"epoch\":" << epoch
                       << ",\"cycles\":" << cycles << ",\"epochCycles\":"
                       << cfg_.runtime.epochCycles
                       << ",\"horizonCycles\":" << horizon
                       << ",\"accesses\":" << acc
                       << ",\"totalAccessesHint\":" << totalHint
                       << ",\"startCycles\":" << hbStartCycles
                       << ",\"startUnixMs\":" << hbStartMs
                       << ",\"wallUnixMs\":" << wallUnixMs()
                       << ",\"tenants\":[";
                    if (servingWl != nullptr) {
                        const std::vector<TenantSpec>& tenants =
                            servingWl->serving().tenants;
                        for (std::size_t t = 0; t < tenants.size(); ++t) {
                            std::uint64_t retired = 0;
                            std::uint64_t violations = 0;
                            for (const ServingGenerator* g : servingGens) {
                                retired += g->tenantStats(t).retired;
                                violations +=
                                    g->tenantStats(t).sloViolations;
                            }
                            if (t > 0) {
                                os << ",";
                            }
                            os << "{\"name\":"
                               << jsonout::str(tenants[t].name)
                               << ",\"reserved\":"
                               << (tenants[t].reserved ? 1 : 0)
                               << ",\"sloCycles\":" << tenants[t].sloCycles
                               << ",\"retired\":" << retired
                               << ",\"violations\":" << violations << "}";
                        }
                    }
                    os << "]}\n";
                },
                &why);
            if (!ok) {
                warn("cannot write heartbeat file '" + path + "': " + why);
            }
        }
    };

    // --- barrier loop state (checkpointed alongside component state) ---
    Cycles next_epoch = cfg_.runtime.epochCycles;
    Cycles next_failure =
        fault != nullptr ? fault->nextFailureAt() : FaultInjector::kNoFailure;
    Cycles interval_start = 0;
    Cycles epoch_start = 0;
    std::uint64_t epoch_idx = 0;
    /** Epoch barriers crossed, counted whether or not telemetry is
     *  attached (epoch_idx is telemetry-local). Names checkpoints. */
    std::uint64_t completed_epochs = 0;

    // Full-machine snapshot at an epoch barrier: the only point where
    // shards are quiescent and no packet is in flight between
    // components. Section order is the restore order below.
    const auto snapshot = [&]() {
        ckpt::Writer w;
        w.section(0x0515);
        w.u64(completed_epochs);
        w.u64(next_epoch);
        w.u64(interval_start);
        w.u64(epoch_start);
        w.u64(epoch_idx);
        // Stream-table read-only bits: the only mutable stream state
        // (write-to-read-only exceptions clear them mid-run).
        std::vector<bool> read_only;
        read_only.reserve(table.numStreams());
        for (const StreamConfig& scfg : table.all()) {
            read_only.push_back(scfg.readOnly);
        }
        w.vecB(read_only);
        w.u64(alive.size());
        for (const std::uint8_t a : alive) {
            w.u8(a);
        }
        noc.serialize(w);
        ext.serialize(w);
        w.b(fault != nullptr);
        if (fault != nullptr) {
            fault->serialize(w);
        }
        w.u64(shards.size());
        for (const Shard& sh : shards) {
            sh.noc->serialize(w);
            sh.ext->serialize(w);
            if (sh.fault != nullptr) {
                sh.fault->serialize(w);
            }
            w.u64(sh.finish);
            w.u64(sh.steps);
            w.u64(sh.busyUntil);
        }
        cache.serialize(w);
        runtime.serialize(w);
        w.u64(cores.size());
        for (const InOrderCore& core : cores) {
            core.serialize(w);
        }
        // Generator side-state (serving frontend: arrival processes,
        // pending queues, latency records). A no-op for the default
        // count-replayed generators.
        for (CoreId c = 0; c < n; ++c) {
            gens[c]->serializeExtra(w);
        }
        w.b(telemetry_ != nullptr);
        if (telemetry_ != nullptr) {
            telemetry_->serialize(w);
        }
        return w;
    };

    // Mirror of snapshot(). The payload already passed the CRC and the
    // config-hash check, so any structural mismatch here is an internal
    // producer/consumer bug -- asserts, not recoverable errors.
    const auto restore = [&](ckpt::Reader& r) {
        r.section(0x0515);
        completed_epochs = r.u64();
        next_epoch = r.u64();
        interval_start = r.u64();
        epoch_start = r.u64();
        epoch_idx = r.u64();
        const std::vector<bool> read_only = r.vecB();
        NDP_ASSERT(read_only.size() == table.numStreams(),
                   "checkpoint stream-count mismatch");
        for (std::size_t i = 0; i < read_only.size(); ++i) {
            if (!read_only[i] && table.all()[i].readOnly) {
                // Replay the write-to-read-only exception's table effect.
                table.markWritten(table.all()[i].sid);
            }
        }
        NDP_ASSERT(r.u64() == alive.size(),
                   "checkpoint core-count mismatch");
        for (std::uint8_t& a : alive) {
            a = r.u8();
        }
        noc.deserialize(r);
        ext.deserialize(r);
        NDP_ASSERT(r.b() == (fault != nullptr),
                   "checkpoint fault-injector presence mismatch");
        if (fault != nullptr) {
            fault->deserialize(r);
        }
        NDP_ASSERT(r.u64() == shards.size(),
                   "checkpoint shard-count mismatch");
        for (Shard& sh : shards) {
            sh.noc->deserialize(r);
            sh.ext->deserialize(r);
            if (sh.fault != nullptr) {
                sh.fault->deserialize(r);
            }
            sh.finish = r.u64();
            sh.steps = r.u64();
            sh.busyUntil = r.u64();
        }
        cache.deserialize(r);
        runtime.deserialize(r);
        NDP_ASSERT(r.u64() == cores.size(),
                   "checkpoint core-count mismatch");
        for (InOrderCore& core : cores) {
            core.deserialize(r);
        }
        for (CoreId c = 0; c < n; ++c) {
            gens[c]->deserializeExtra(r);
        }
        NDP_ASSERT(r.b() == (telemetry_ != nullptr),
                   "checkpoint telemetry presence mismatch");
        if (telemetry_ != nullptr) {
            telemetry_->deserialize(r);
        }
        NDP_ASSERT(r.atEnd(), "checkpoint payload has trailing state");

        // Fast-forward the (freshly constructed) generators: replaying
        // the consumed accesses walks their RNG/index state to exactly
        // where the snapshot left off (generators are deterministic and
        // consume nothing once exhausted). Self-contained generators
        // (serving) restored their full state -- including their
        // sub-generators -- in deserializeExtra above.
        for (CoreId c = 0; c < n; ++c) {
            if (gens[c]->checkpointSelfContained()) {
                continue;
            }
            Access dummy;
            for (std::uint64_t i = 0; i < cores[c].accesses(); ++i) {
                const bool ok = gens[c]->next(dummy);
                NDP_ASSERT(ok, "generator exhausted during resume replay");
            }
        }
    };

    if (resume_) {
        ckpt::Reader r(resumePayload_);
        restore(r);
        // Derived, not stored: the restored master injector knows the
        // remaining failure schedule.
        next_failure = fault != nullptr ? fault->nextFailureAt()
                                        : FaultInjector::kNoFailure;
    } else {
        runtime.start();
    }
    for (CoreId c = 0; c < n; ++c) {
        if (alive[c] != 0) {
            shards[topo.stackOf(c)].ready.emplace(cores[c].now(), c);
        }
    }
    const std::uint64_t ckpt_hash =
        ckptEvery_ != 0 ? configHash(workload) : 0;

    // --- barrier loop: shards advance in parallel to the next global
    // event (epoch boundary or scheduled failure); the runtime acts at
    // the barrier, then the interval repeats. The decomposition is fixed
    // per stack, so any --threads value produces identical results.
    const std::uint32_t threads = std::min<std::uint32_t>(
        std::max<std::uint32_t>(cfg_.numThreads, 1), numShards);
    ShardedExecutor exec(threads);

    const auto engine_start = std::chrono::steady_clock::now();
    // First heartbeat before any epoch completes, so staleness monitors
    // have a baseline mtime from the moment the engine starts.
    writeHeartbeat(completed_epochs,
                   completed_epochs * cfg_.runtime.epochCycles, false);
    for (;;) {
        const Cycles sync = std::min(next_epoch, next_failure);
        exec.forEachShard(numShards, [&](std::uint32_t s) {
            Shard& sh = shards[s];
            while (!sh.ready.empty() && sh.ready.top().first < sync) {
                const CoreId c = sh.ready.top().second;
                sh.ready.pop();
                ++sh.steps;
                if (cores[c].step(*gens[c])) {
                    sh.ready.emplace(cores[c].now(), c);
                } else {
                    alive[c] = 0;
                    sh.finish = std::max(sh.finish, cores[c].now());
                }
                sh.busyUntil = std::max(sh.busyUntil, cores[c].now());
            }
        });
        cache.applyDeferredWriteExceptions();

        bool active = false;
        for (const Shard& sh : shards) {
            active = active || !sh.ready.empty();
        }

        // Barrier-side telemetry: drain shard-private packet samples in
        // core-id order and split each shard's interval into execute /
        // barrier-wait (simulated-time imbalance, thread-count blind).
        if (telemetry_ != nullptr) {
            telemetry_->drainPacketSamples();
            telemetry_->drainRequestTraces();
            TraceWriter& tw = telemetry_->trace();
            for (std::uint32_t s = 0; s < numShards; ++s) {
                const Cycles busy = std::max(
                    interval_start, std::min(shards[s].busyUntil, sync));
                if (busy > interval_start) {
                    tw.completeSpan("shard", "execute",
                                    TraceWriter::kPidShards, s,
                                    interval_start, busy - interval_start);
                }
                if (active && sync > busy) {
                    tw.completeSpan("shard", "barrier_wait",
                                    TraceWriter::kPidShards, s, busy,
                                    sync - busy);
                }
            }
            interval_start = sync;
        }

        if (!active) {
            break;
        }
        if (next_failure <= next_epoch) {
            // Failures fire before a coinciding epoch boundary.
            runtime.onUnitFailures(fault->popFailuresUpTo(next_failure),
                                   next_failure);
            next_failure = fault->nextFailureAt();
        } else {
            if (telemetry_ != nullptr) {
                // Snapshot before onEpochEnd clears the sampler counters.
                if (servingWl != nullptr) {
                    refreshTenantLatency();
                }
                telemetry_->sampleEpoch(epoch_idx, next_epoch);
                telemetry_->finalizeRequestEpoch(epoch_idx);
                std::string args = "{\"epoch\":";
                args += std::to_string(epoch_idx);
                args += '}';
                telemetry_->trace().completeSpan(
                    "epoch", "epoch", TraceWriter::kPidRuntime, 0,
                    epoch_start, next_epoch - epoch_start, args);
                epoch_start = next_epoch;
                ++epoch_idx;
            }
            // Serving churn feeds the incremental solver's delta set:
            // streams of any tenant whose activity window opened or
            // closed during the elapsed epoch are re-solved from
            // scratch even if their demand fingerprints look stable.
            if (servingWl != nullptr && cfg_.runtime.solverWarmStart) {
                const Cycles lo =
                    next_epoch > cfg_.runtime.epochCycles
                    ? next_epoch - cfg_.runtime.epochCycles
                    : 0;
                const std::size_t ntenants =
                    servingWl->serving().tenants.size();
                std::vector<bool> churned(ntenants, false);
                bool any = false;
                for (std::size_t t = 0; t < ntenants; ++t) {
                    const Cycles st = servingWl->activeStart(t);
                    const Cycles en = servingWl->activeEnd(t);
                    if ((st > lo && st <= next_epoch)
                        || (en > lo && en <= next_epoch)) {
                        churned[t] = true;
                        any = true;
                    }
                }
                if (any) {
                    std::vector<StreamId> sids;
                    for (const StreamConfig& scfg : table.all()) {
                        if (churned[servingWl->streamTenant(
                                scfg.sid)]) {
                            sids.push_back(scfg.sid);
                        }
                    }
                    runtime.noteStreamChurn(sids);
                }
            }
            runtime.onEpochEnd(next_epoch);
            next_epoch += cfg_.runtime.epochCycles;
            ++completed_epochs;
            if (ckptEvery_ != 0 && completed_epochs % ckptEvery_ == 0) {
                if (telemetry_ != nullptr) {
                    // Bound image growth: move rendered telemetry to the
                    // on-disk .part side files so the snapshot only
                    // carries un-flushed state (DESIGN.md §6).
                    std::string ferr;
                    if (!telemetry_->flushToDisk(&ferr)) {
                        warn(ferr);
                    }
                }
                const ckpt::Writer w = snapshot();
                const std::string path = ckptPrefix_ + "."
                    + std::to_string(completed_epochs) + ".ckpt";
                std::string err;
                if (!ckpt::saveCheckpoint(path, ckpt_hash,
                                          completed_epochs, w.bytes(),
                                          &err)) {
                    // The run itself is unaffected; keep going so a
                    // transient disk problem does not kill hours of
                    // simulation (older checkpoints remain usable).
                    warn(err);
                }
            }
            writeHeartbeat(completed_epochs,
                           next_epoch - cfg_.runtime.epochCycles, false);
        }
    }
    const auto engine_end = std::chrono::steady_clock::now();
    Cycles finish = 0;
    for (const Shard& sh : shards) {
        finish = std::max(finish, sh.finish);
    }
    // Final partial epoch: one last metric sample + epoch span.
    if (telemetry_ != nullptr) {
        if (servingWl != nullptr) {
            refreshTenantLatency();
        }
        telemetry_->sampleEpoch(epoch_idx, finish);
        telemetry_->finalizeRequestEpoch(epoch_idx);
        if (finish > epoch_start) {
            std::string args = "{\"epoch\":";
            args += std::to_string(epoch_idx);
            args += '}';
            telemetry_->trace().completeSpan(
                "epoch", "epoch", TraceWriter::kPidRuntime, 0, epoch_start,
                finish - epoch_start, args);
        }
    }
    writeHeartbeat(completed_epochs, finish, true);

    // --- collect results (sums over shard-private models) ---
    RunResult res;
    res.workload = workload.name();
    res.policy = policyName(policy_);
    res.cycles = finish;
    res.bd = cache.breakdown();
    res.missRate = cache.missRate();
    res.metadataHitRate = cache.metadataHitRate();
    res.writeExceptions = cache.writeExceptions();
    res.invalidatedRows = cache.invalidatedRows();
    res.survivedRows = cache.survivedRows();
    res.reconfigurations = runtime.reconfigurations();
    res.slbMisses = cache.slbMissTotal();
    for (const Shard& sh : shards) {
        res.degraded.linkRetries += sh.ext->linkRetries();
        res.degraded.retriesExhausted += sh.ext->retriesExhausted();
        res.degraded.poisonedReads += sh.ext->poisonedReads();
    }
    res.degraded.poisonEscalations = cache.poisonEscalations();
    res.degraded.failedUnitRedirects = cache.failedUnitRedirects();
    res.degraded.dramFaultRefetches = cache.dramFaultRefetches();
    res.degraded.failedUnits = runtime.failedUnits();
    res.degraded.emergencyReconfigs = runtime.emergencyReconfigurations();
    if (fault != nullptr
        && fault->firstFailureAt() != FaultInjector::kNoFailure
        && finish > fault->firstFailureAt()) {
        res.degraded.cyclesDegraded = finish - fault->firstFailureAt();
    }
    for (const auto& core : cores) {
        res.accesses += core.accesses();
        res.l1Hits += core.l1Hits();
        core.report(res.stats, "core" + std::to_string(core.id()));
    }

    // Machine-wide CPI stack (fixed-order sums over cores, so the values
    // are bit-identical for any --threads value; ndpext_report topdown
    // checks the bucket-sum invariant against cores.memStallCycles).
    {
        CoreStallBreakdown stall;
        Cycles compute = 0;
        Cycles l1 = 0;
        Cycles mem_stall = 0;
        for (const auto& core : cores) {
            const CoreStallBreakdown& s = core.stallBreakdown();
            stall.metadata += s.metadata;
            stall.icnIntra += s.icnIntra;
            stall.icnInter += s.icnInter;
            stall.dramCache += s.dramCache;
            stall.extMem += s.extMem;
            stall.mshrQueue += s.mshrQueue;
            compute += core.computeCycles();
            l1 += core.l1Cycles();
            mem_stall += core.memStallCycles();
        }
        res.stats.set("cores.computeCycles", static_cast<double>(compute));
        res.stats.set("cores.l1Cycles", static_cast<double>(l1));
        res.stats.set("cores.memStallCycles",
                      static_cast<double>(mem_stall));
        stall.report(res.stats, "cores.stall");
    }

    // Engine throughput telemetry. Event and pool counters are
    // deterministic (thread-count blind) and gate nothing; the wall
    // clock is host-dependent and advisory (the "Micros" suffix excludes
    // it from bit-identity checks).
    {
        res.engineWallMicros = static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                engine_end - engine_start)
                .count());
        std::uint64_t steps = 0;
        for (const Shard& sh : shards) {
            steps += sh.steps;
        }
        std::uint64_t pool_high = cache.packetPoolHighWater();
        std::uint64_t pool_alloc = cache.packetPoolAllocated();
        for (const auto& core : cores) {
            pool_high += core.packetPool().highWater();
            pool_alloc += core.packetPool().allocated();
        }
        res.stats.set("engine.eventsFired", static_cast<double>(steps));
        res.stats.set("engine.packetPool.highWater",
                      static_cast<double>(pool_high));
        res.stats.set("engine.packetPool.allocated",
                      static_cast<double>(pool_alloc));
        res.stats.set("engine.wallMicros",
                      static_cast<double>(res.engineWallMicros));
    }

    // Per-stream cost attribution (mirrors the telemetry series so
    // --stats-json carries them too).
    auto addStreamStats = [&](const std::string& base, StreamId sid,
                              bool none) {
        Cycles stall = 0;
        for (const auto& core : cores) {
            stall += none ? core.noStreamStallCycles()
                          : core.streamStallCycles(sid);
        }
        res.stats.set(base + ".stallCycles", static_cast<double>(stall));
        const LatencyBreakdown bd = none ? cache.nonStreamBreakdown()
                                         : cache.streamBreakdown(sid);
        res.stats.set(base + ".serviceCycles.metadata",
                      static_cast<double>(bd.metadata));
        res.stats.set(base + ".serviceCycles.icnIntra",
                      static_cast<double>(bd.icnIntra));
        res.stats.set(base + ".serviceCycles.icnInter",
                      static_cast<double>(bd.icnInter));
        res.stats.set(base + ".serviceCycles.dramCache",
                      static_cast<double>(bd.dramCache));
        res.stats.set(base + ".serviceCycles.extMem",
                      static_cast<double>(bd.extMem));
        double icn = 0.0;
        double link = 0.0;
        double ext_dram = 0.0;
        for (const Shard& sh : shards) {
            icn += none ? sh.noc->unattributedEnergyNj()
                        : sh.noc->streamEnergyNj(sid);
            link += none ? sh.ext->unattributedLinkEnergyNj()
                         : sh.ext->streamLinkEnergyNj(sid);
            ext_dram += none ? sh.ext->unattributedDramEnergyNj()
                             : sh.ext->streamDramEnergyNj(sid);
        }
        res.stats.set(base + ".energyNj.icn", icn);
        res.stats.set(base + ".energyNj.cxlLink", link);
        res.stats.set(base + ".energyNj.extDram", ext_dram);
        res.stats.set(base + ".energyNj.dramCache",
                      none ? cache.nonStreamDramCacheEnergyNj()
                           : cache.streamDramCacheEnergyNj(sid));
        res.stats.set(base + ".energyNj.sram",
                      none ? cache.nonStreamSramEnergyNj()
                           : cache.streamSramEnergyNj(sid));
    };
    for (const StreamConfig& scfg : table.all()) {
        addStreamStats("stream." + std::to_string(scfg.sid), scfg.sid,
                       false);
    }
    addStreamStats("stream.none", kNoStream, true);

    // Per-tenant SLO telemetry (ndpext_report slo / --stats-json).
    if (servingWl != nullptr) {
        refreshTenantLatency();
        const std::vector<TenantSpec>& tenants =
            servingWl->serving().tenants;
        res.stats.set("serving.tenants",
                      static_cast<double>(tenants.size()));
        for (std::size_t t = 0; t < tenants.size(); ++t) {
            std::uint64_t arrivals = 0;
            std::uint64_t started = 0;
            std::uint64_t retired = 0;
            std::uint64_t violations = 0;
            for (const ServingGenerator* g : servingGens) {
                arrivals += g->tenantStats(t).arrivals;
                started += g->tenantStats(t).started;
                retired += g->tenantStats(t).retired;
                violations += g->tenantStats(t).sloViolations;
            }
            const Histogram& lat = tenantLatency[t];
            const std::string base = "tenant." + tenants[t].name;
            res.stats.set(base + ".arrivals",
                          static_cast<double>(arrivals));
            res.stats.set(base + ".started",
                          static_cast<double>(started));
            res.stats.set(base + ".retired",
                          static_cast<double>(retired));
            res.stats.set(base + ".sloViolations",
                          static_cast<double>(violations));
            res.stats.set(base + ".sloCycles",
                          static_cast<double>(tenants[t].sloCycles));
            res.stats.set(base + ".reserved",
                          tenants[t].reserved ? 1.0 : 0.0);
            res.stats.set(base + ".latencyMean", lat.mean());
            res.stats.set(base + ".latencyP50", lat.percentile(0.5));
            res.stats.set(base + ".latencyP99", lat.percentile(0.99));
            res.stats.set(base + ".latencyMax", lat.maxValue());
            res.stats.set(base + ".sloAttainment",
                          retired == 0
                              ? 1.0
                              : 1.0
                                  - static_cast<double>(violations)
                                      / static_cast<double>(retired));
        }
    }

    const double seconds = static_cast<double>(finish)
        / (static_cast<double>(cfg_.coreFreqMhz) * 1e6);
    res.energy.staticNj = (cfg_.staticWattsPerUnit * n
                           + cfg_.staticWattsExt)
        * seconds * 1e9;
    res.energy.ndpDramNj = cache.dramCacheEnergyNj();
    res.energy.sramNj = cache.sramEnergyNj();
    for (const Shard& sh : shards) {
        res.energy.extDramNj += sh.ext->dramEnergyNj();
        res.energy.cxlLinkNj += sh.ext->linkEnergyNj();
        res.energy.icnNj += sh.noc->energyNj();
    }

    cache.report(res.stats, "cache");
    for (const Shard& sh : shards) {
        // report() uses add(), so shard instances accumulate.
        sh.noc->report(res.stats, "noc");
        sh.ext->report(res.stats, "ext");
    }
    runtime.report(res.stats, "runtime");
    if (fault != nullptr) {
        fault->report(res.stats, "fault");
        for (const Shard& sh : shards) {
            sh.fault->report(res.stats, "fault");
        }
        res.stats.set("degraded.cycles",
                      static_cast<double>(res.degraded.cyclesDegraded));
    }
    res.stats.set("cycles", static_cast<double>(finish));
    return res;
}

} // namespace ndpext
