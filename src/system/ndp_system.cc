#include "system/ndp_system.h"

#include <algorithm>
#include <queue>
#include <utility>
#include <vector>

#include "baselines/nuca_policies.h"
#include "common/logging.h"
#include "runtime/static_config.h"

namespace ndpext {

namespace {

/** Build the configurator matching the policy. */
std::unique_ptr<Configurator>
makeConfigurator(PolicyKind policy, const SystemConfig& cfg,
                 const StreamCacheController& cache, const NocModel& noc)
{
    const DramTimingParams dram = cfg.unitDram();
    const DramDevice probe(dram, cfg.coreFreqMhz);

    BaselineContext ctx;
    ctx.numUnits = cache.numUnits();
    ctx.rowsPerUnit = cache.rowsPerUnit();
    ctx.rowBytes = cache.rowBytes();
    ctx.dramLatency = probe.rowHitLatency();

    switch (policy) {
      case PolicyKind::NdpExt: {
        ConfigParams params;
        params.numUnits = cache.numUnits();
        params.rowsPerUnit = cache.rowsPerUnit();
        params.rowBytes = cache.rowBytes();
        params.affineCapBytesPerUnit =
            cache.params().affineCapBytesPerUnit;
        params.dramLatency = probe.rowHitLatency();
        params.allowReplication = cfg.allowReplication;
        return std::make_unique<NdpExtConfigurator>(params, noc);
      }
      case PolicyKind::NdpExtStatic:
        return std::make_unique<StaticEqualConfigurator>(cache);
      case PolicyKind::Jigsaw:
        return std::make_unique<JigsawConfigurator>(ctx, noc);
      case PolicyKind::Whirlpool:
        return std::make_unique<WhirlpoolConfigurator>(ctx, noc);
      case PolicyKind::Nexus:
        return std::make_unique<NexusConfigurator>(ctx, noc);
      case PolicyKind::StaticInterleave:
        return std::make_unique<StaticInterleaveConfigurator>(ctx, noc);
    }
    NDP_PANIC("bad policy kind");
}

} // namespace

NdpSystem::NdpSystem(const SystemConfig& config, PolicyKind policy)
    : cfg_(config), policy_(policy)
{
    cfg_.finalize();
    cfg_.cache.cachelineMode = isCachelinePolicy(policy);
}

RunResult
NdpSystem::run(const Workload& workload)
{
    NDP_ASSERT(!used_, "NdpSystem is single-use; construct a fresh one");
    used_ = true;
    NDP_ASSERT(workload.prepared(), "workload not prepared");
    NDP_ASSERT(workload.params().numCores == cfg_.numUnits(),
               "workload cores (", workload.params().numCores,
               ") != NDP units (", cfg_.numUnits(), ")");

    // --- construct the machine ---
    StreamTable table;
    workload.registerStreams(table);

    MeshTopology topo(cfg_.stacksX, cfg_.stacksY, cfg_.unitsX, cfg_.unitsY);
    NocModel noc(topo, cfg_.noc);
    ExtendedMemory ext(cfg_.cxl, DramTimingParams::ddr5Extended(),
                       cfg_.coreFreqMhz);
    StreamCacheController cache(cfg_.cache, table, noc, ext,
                                cfg_.unitDram(), cfg_.unitCacheBytes,
                                cfg_.coreFreqMhz);
    NdpRuntime runtime(cfg_.runtime, cache,
                       makeConfigurator(policy_, cfg_, cache, noc));

    std::unique_ptr<FaultInjector> fault;
    if (cfg_.faults.anyFaults()) {
        for (const UnitFailure& f : cfg_.faults.unitFailures) {
            NDP_ASSERT(f.unit < cfg_.numUnits(),
                       "scheduled failure of nonexistent unit ", f.unit);
        }
        fault = std::make_unique<FaultInjector>(cfg_.faults);
        ext.setFaultInjector(fault.get());
        cache.setFaultInjector(fault.get());
    }

    const std::uint32_t n = cfg_.numUnits();
    std::vector<InOrderCore> cores;
    cores.reserve(n);
    std::vector<std::unique_ptr<AccessGenerator>> gens;
    gens.reserve(n);
    for (CoreId c = 0; c < n; ++c) {
        cores.emplace_back(c, cfg_.core, cache);
        gens.push_back(workload.makeGenerator(c));
    }

    runtime.start();

    // --- event loop: advance the globally-earliest core; fire epochs ---
    using HeapItem = std::pair<Cycles, CoreId>;
    std::priority_queue<HeapItem, std::vector<HeapItem>,
                        std::greater<HeapItem>>
        ready;
    for (CoreId c = 0; c < n; ++c) {
        ready.emplace(cores[c].now(), c);
    }
    Cycles next_epoch = cfg_.runtime.epochCycles;
    Cycles next_failure =
        fault != nullptr ? fault->nextFailureAt() : FaultInjector::kNoFailure;
    Cycles finish = 0;
    while (!ready.empty()) {
        const auto [when, c] = ready.top();
        ready.pop();
        if (when >= next_failure) {
            // Fire scheduled unit failures before the core advances past
            // them; the runtime reconfigures out-of-epoch immediately
            // (once per batch of simultaneous failures).
            runtime.onUnitFailures(fault->popFailuresUpTo(when));
            next_failure = fault->nextFailureAt();
            ready.emplace(when, c);
            continue;
        }
        if (when >= next_epoch) {
            runtime.onEpochEnd(next_epoch);
            next_epoch += cfg_.runtime.epochCycles;
            ready.emplace(when, c);
            continue;
        }
        if (cores[c].step(*gens[c])) {
            ready.emplace(cores[c].now(), c);
        } else {
            finish = std::max(finish, cores[c].now());
        }
    }

    // --- collect results ---
    RunResult res;
    res.workload = workload.name();
    res.policy = policyName(policy_);
    res.cycles = finish;
    res.bd = cache.breakdown();
    res.missRate = cache.missRate();
    res.metadataHitRate = cache.metadataHitRate();
    res.writeExceptions = cache.writeExceptions();
    res.invalidatedRows = cache.invalidatedRows();
    res.survivedRows = cache.survivedRows();
    res.reconfigurations = runtime.reconfigurations();
    res.slbMisses = cache.slbMissTotal();
    res.degraded.linkRetries = ext.linkRetries();
    res.degraded.retriesExhausted = ext.retriesExhausted();
    res.degraded.poisonedReads = ext.poisonedReads();
    res.degraded.poisonEscalations = cache.poisonEscalations();
    res.degraded.failedUnitRedirects = cache.failedUnitRedirects();
    res.degraded.dramFaultRefetches = cache.dramFaultRefetches();
    res.degraded.failedUnits = runtime.failedUnits();
    res.degraded.emergencyReconfigs = runtime.emergencyReconfigurations();
    if (fault != nullptr
        && fault->firstFailureAt() != FaultInjector::kNoFailure
        && finish > fault->firstFailureAt()) {
        res.degraded.cyclesDegraded = finish - fault->firstFailureAt();
    }
    for (const auto& core : cores) {
        res.accesses += core.accesses();
        res.l1Hits += core.l1Hits();
        core.report(res.stats, "core" + std::to_string(core.id()));
    }

    const double seconds = static_cast<double>(finish)
        / (static_cast<double>(cfg_.coreFreqMhz) * 1e6);
    res.energy.staticNj = (cfg_.staticWattsPerUnit * n
                           + cfg_.staticWattsExt)
        * seconds * 1e9;
    res.energy.ndpDramNj = cache.dramCacheEnergyNj();
    res.energy.extDramNj = ext.dramEnergyNj();
    res.energy.cxlLinkNj = ext.linkEnergyNj();
    res.energy.icnNj = noc.energyNj();
    res.energy.sramNj = cache.sramEnergyNj();

    cache.report(res.stats, "cache");
    noc.report(res.stats, "noc");
    ext.report(res.stats, "ext");
    runtime.report(res.stats, "runtime");
    if (fault != nullptr) {
        fault->report(res.stats, "fault");
        res.stats.set("degraded.cycles",
                      static_cast<double>(res.degraded.cyclesDegraded));
    }
    res.stats.set("cycles", static_cast<double>(finish));
    return res;
}

} // namespace ndpext
