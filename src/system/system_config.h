/**
 * @file
 * Top-level system configuration (Table II) and the policy selector.
 *
 * Two presets:
 *  - scaledDefault(): the simulation-friendly configuration used by tests
 *    and benches -- same geometry, latencies and bandwidth ratios as
 *    Table II, with DRAM-cache capacity and workload footprints scaled
 *    down together (see DESIGN.md section 1).
 *  - paperScale(): the full Table II configuration (16 GB of NDP DRAM,
 *    256 MB per unit), constructible for spot experiments.
 */

#ifndef NDPEXT_SYSTEM_SYSTEM_CONFIG_H
#define NDPEXT_SYSTEM_SYSTEM_CONFIG_H

#include <cstdint>
#include <string>

#include "cpu/core.h"
#include "cxl/extended_memory.h"
#include "fault/fault_injector.h"
#include "mem/dram.h"
#include "ndp/stream_cache.h"
#include "noc/noc_model.h"
#include "runtime/ndp_runtime.h"
#include "serving/serving_config.h"

namespace ndpext {

/** Cache management scheme under test (Fig. 5 legend). */
enum class PolicyKind
{
    NdpExt,
    NdpExtStatic,
    Jigsaw,
    Whirlpool,
    Nexus,
    StaticInterleave,
};

std::string policyName(PolicyKind kind);
PolicyKind policyFromName(const std::string& name);

/** True for the cacheline-grained adapted-NUCA baselines. */
bool isCachelinePolicy(PolicyKind kind);

/** NDP memory technology (Table II: HBM3 or HMC2). */
enum class NdpMemType
{
    Hbm3,
    Hmc2,
};

struct SystemConfig
{
    // Geometry: stacks in a mesh, units per stack in a mesh.
    std::uint32_t stacksX = 4;
    std::uint32_t stacksY = 2;
    std::uint32_t unitsX = 2;
    std::uint32_t unitsY = 4;

    std::uint64_t coreFreqMhz = 2000;
    CoreParams core;
    NdpMemType memType = NdpMemType::Hbm3;

    /** DRAM-cache capacity per NDP unit. */
    std::uint64_t unitCacheBytes = 1_MiB;

    StreamCacheParams cache;
    NocParams noc;
    CxlParams cxl;
    RuntimeParams runtime;

    /** Ablation switch for Algorithm 1's replication (bench_ablation). */
    bool allowReplication = true;

    /**
     * Fault-injection configuration (bench_fault_degradation, --fault).
     * Empty (the default) runs fault-free with zero simulation overhead.
     */
    FaultParams faults;

    /**
     * Multi-tenant serving frontend (--tenant/--horizon; src/serving).
     * Empty (the default) runs the classic closed-loop workloads.
     */
    ServingConfig serving;

    /** Static power: NDP unit (core + logic + SRAM) and ext memory. */
    double staticWattsPerUnit = 0.05;
    double staticWattsExt = 2.0;

    /**
     * Simulation threads for the sharded epoch-parallel executor. The
     * shard decomposition is always one shard per stack, independent of
     * the thread count, so results are bit-identical for any value; this
     * only controls how many shards run concurrently between barriers.
     */
    std::uint32_t numThreads = 1;

    /**
     * Memory backend selection per role (see mem/mem_backend_registry.h
     * and `--mem-backend.<role>=NAME[,key=val...]`). Timing left unset
     * resolves to the role default: the memType device for NDP units,
     * DDR5-4800 for extended memory, DDR5 host channels for the host
     * baseline.
     */
    MemBackendConfig memBackendUnit;
    MemBackendConfig memBackendExt;
    MemBackendConfig memBackendHost;

    std::uint32_t
    numUnits() const
    {
        return stacksX * stacksY * unitsX * unitsY;
    }

    DramTimingParams unitDram() const;

    /** Role selections with timing defaults filled in. */
    MemBackendConfig unitMemBackend() const;
    MemBackendConfig extMemBackend() const;
    MemBackendConfig hostMemBackend() const;

    /**
     * Check user-facing constraints, returning false with a diagnostic
     * in `*error` instead of aborting: CLI frontends call this on
     * flag-derived configs so a typo exits with a clear message
     * (finalize() keeps the same conditions as asserts for library
     * callers that skip validation).
     */
    bool validate(std::string* error) const;

    /** Derive dependent fields (affine cap, sampler range) and validate. */
    void finalize();

    static SystemConfig scaledDefault();
    static SystemConfig paperScale();
};

} // namespace ndpext

#endif // NDPEXT_SYSTEM_SYSTEM_CONFIG_H
