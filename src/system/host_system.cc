#include "system/host_system.h"

#include <algorithm>
#include <queue>
#include <vector>

#include "common/logging.h"

namespace ndpext {

HostSystem::HostSystem(const HostParams& params) : params_(params)
{
}

RunResult
HostSystem::run(const Workload& workload)
{
    NDP_ASSERT(!used_, "HostSystem is single-use");
    used_ = true;
    NDP_ASSERT(workload.prepared());
    NDP_ASSERT(workload.params().numCores == params_.numCores,
               "workload cores != host cores");

    HostLlcController llc(params_);
    std::vector<InOrderCore> cores;
    cores.reserve(params_.numCores);
    std::vector<std::unique_ptr<AccessGenerator>> gens;
    for (CoreId c = 0; c < params_.numCores; ++c) {
        cores.emplace_back(c, core_);
        cores.back().memPort().bind(llc.port("cpu_side"));
        gens.push_back(workload.makeGenerator(c));
    }

    using HeapItem = std::pair<Cycles, CoreId>;
    std::priority_queue<HeapItem, std::vector<HeapItem>,
                        std::greater<HeapItem>>
        ready;
    for (CoreId c = 0; c < params_.numCores; ++c) {
        ready.emplace(cores[c].now(), c);
    }
    Cycles finish = 0;
    while (!ready.empty()) {
        const auto [when, c] = ready.top();
        (void)when;
        ready.pop();
        if (cores[c].step(*gens[c])) {
            ready.emplace(cores[c].now(), c);
        } else {
            finish = std::max(finish, cores[c].now());
        }
    }

    RunResult res;
    res.workload = workload.name();
    res.policy = "host";
    res.cycles = finish;
    res.bd = llc.breakdown();
    res.missRate = 1.0 - llc.llcHitRate();
    for (const auto& core : cores) {
        res.accesses += core.accesses();
        res.l1Hits += core.l1Hits();
    }

    const double seconds = static_cast<double>(finish) / 2e9;
    // Host static power: 64 big cores + LLC, coarse 40 W class.
    res.energy.staticNj = 40.0 * seconds * 1e9;
    res.energy.extDramNj = llc.dramEnergyNj();
    res.energy.icnNj = llc.nocEnergyNj();

    llc.report(res.stats, "llc");
    res.stats.set("cycles", static_cast<double>(finish));
    return res;
}

} // namespace ndpext
