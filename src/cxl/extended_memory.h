/**
 * @file
 * CXL.mem Type-3 extended memory: a CXL link in front of DDR5 channels.
 *
 * Table II: 16-lane link, 200 ns link latency (excluding DRAM access),
 * 11.4 pJ/bit; backing DDR5-4800 with 4 channels x 2 ranks x 16 banks.
 * Fig. 8(b) sweeps the link latency (50/70/200 ns cases).
 *
 * Fault model (when a FaultInjector is attached): transient link errors
 * force the endpoint to retry the request with capped exponential
 * backoff -- every attempt re-occupies link bandwidth and pays the link
 * latency again. Media poison is sticky per cacheline; a poisoned read
 * completes but is flagged so the caller can escalate to the runtime.
 */

#ifndef NDPEXT_CXL_EXTENDED_MEMORY_H
#define NDPEXT_CXL_EXTENDED_MEMORY_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/types.h"
#include "fault/fault_injector.h"
#include "mem/mem_backend.h"
#include "sim/port.h"
#include "sim/resource.h"
#include "sim/stats.h"

namespace ndpext {

struct CxlParams
{
    /** One-way link latency in core cycles (200 ns @ 2 GHz = 400). */
    Cycles linkLatencyCycles = 400;
    /** Link bandwidth, bytes per core cycle (x16 CXL 3.0 ~ 121 GB/s). */
    double linkBytesPerCycle = 60.0;
    /** Link transfer energy, pJ per bit. */
    double pjPerBit = 11.4;
};

/** Completion info of one extended-memory access. */
struct CxlResult
{
    Cycles done = 0;
    /** Read returned a poisoned line: data unusable, escalate. */
    bool poisoned = false;
};

/**
 * The CXL endpoint + DDR5 device. The link is a shared bandwidth resource;
 * every access pays one round trip: request over the link, DDR5 access,
 * response over the link.
 */
class ExtendedMemory : public MemObject
{
  public:
    /**
     * @param dram backend selection for the backing device; a bare
     * DramTimingParams converts to the default "banked" backend.
     */
    ExtendedMemory(const CxlParams& cxl, const MemBackendConfig& dram,
                   std::uint64_t core_freq_mhz);

    ExtendedMemory(const ExtendedMemory&) = delete;
    ExtendedMemory& operator=(const ExtendedMemory&) = delete;

    /** Attach (or detach with nullptr) the fault injector. */
    void setFaultInjector(FaultInjector* fault) { fault_ = fault; }

    /**
     * Port protocol (response port "in"): service pkt at the CXL attach
     * point, advancing pkt.ready, charging the extMem bucket, and setting
     * pkt.poisoned on a poisoned read.
     */
    void recvAtomic(Packet& pkt);

    /**
     * Access `bytes` at `addr`, arriving at the CXL port at `now`. `sid`
     * owns the access for energy attribution (kNoStream = unattributed).
     */
    CxlResult access(Addr addr, std::uint32_t bytes, bool is_write,
                     Cycles now, StreamId sid = kNoStream);

    const CxlParams& params() const { return cxl_; }
    const MemBackend& dram() const { return *dram_; }

    std::uint64_t accesses() const { return accesses_; }
    double linkEnergyNj() const { return linkEnergyNj_; }
    double dramEnergyNj() const { return dram_->dynamicEnergyNj(); }
    /** Payload bytes moved over the CXL link (bandwidth telemetry). */
    std::uint64_t linkBytes() const { return linkBytes_; }

    /**
     * Per-stream cost attribution: link bytes (incl. the request flit and
     * any fault retries), DRAM bytes, and DRAM row activations are counted
     * per owning stream id, and the energy shares are derived from those
     * integer counters with the device's energy coefficients. Summed over
     * every stream plus the kNoStream slot, the integer counters equal the
     * machine totals exactly; the derived energies match linkEnergyNj() /
     * dramEnergyNj() up to float association order.
     */
    double
    streamLinkEnergyNj(StreamId sid) const
    {
        return linkEnergyFor(counters(sid));
    }
    double
    streamDramEnergyNj(StreamId sid) const
    {
        return dramEnergyFor(counters(sid));
    }
    double unattributedLinkEnergyNj() const
    {
        return linkEnergyFor(noStream_);
    }
    double unattributedDramEnergyNj() const
    {
        return dramEnergyFor(noStream_);
    }

    /** Transient-link-error retries performed (degraded mode). */
    std::uint64_t linkRetries() const { return linkRetries_; }
    /** Accesses whose retry budget ran out (link-level FEC recovery). */
    std::uint64_t retriesExhausted() const { return retriesExhausted_; }
    /** Reads that returned poison. */
    std::uint64_t poisonedReads() const { return poisonedReads_; }

    void report(StatGroup& stats, const std::string& prefix) const;
    void reset();

    /** Registers "ext.*" series (shard clones sum into one series). */
    void registerMetrics(MetricRegistry& registry) override;

    /** Checkpoint hooks (link/DRAM parameters are configuration). */
    void
    serialize(ckpt::Writer& w) const
    {
        dram_->serialize(w);
        link_.serialize(w);
        w.u64(stream_.size());
        for (const StreamCounters& c : stream_) {
            w.u64(c.linkBytes);
            w.u64(c.dramBytes);
            w.u64(c.dramActivations);
        }
        w.u64(noStream_.linkBytes);
        w.u64(noStream_.dramBytes);
        w.u64(noStream_.dramActivations);
        w.u64(accesses_);
        w.d(linkEnergyNj_);
        w.u64(linkBytes_);
        w.u64(linkRetries_);
        w.u64(retriesExhausted_);
        w.u64(poisonedReads_);
    }

    void
    deserialize(ckpt::Reader& r)
    {
        dram_->deserialize(r);
        link_.deserialize(r);
        stream_.assign(r.u64(), StreamCounters{});
        for (StreamCounters& c : stream_) {
            c.linkBytes = r.u64();
            c.dramBytes = r.u64();
            c.dramActivations = r.u64();
        }
        noStream_.linkBytes = r.u64();
        noStream_.dramBytes = r.u64();
        noStream_.dramActivations = r.u64();
        accesses_ = r.u64();
        linkEnergyNj_ = r.d();
        linkBytes_ = r.u64();
        linkRetries_ = r.u64();
        retriesExhausted_ = r.u64();
        poisonedReads_ = r.u64();
    }

  protected:
    MemPort* getPort(const std::string& port_name) override
    {
        return port_name == "in" ? &in_ : nullptr;
    }

  private:
    /** Response port adapter forwarding into recvAtomic(). */
    class InPort final : public MemPort
    {
      public:
        explicit InPort(ExtendedMemory& owner)
            : MemPort("ext.in"), owner_(owner)
        {
        }
        void recvAtomic(Packet& pkt) final { owner_.recvAtomic(pkt); }

      private:
        ExtendedMemory& owner_;
    };

    /** Integer cost counters of one stream (exact across any sharding). */
    struct StreamCounters
    {
        std::uint64_t linkBytes = 0;
        std::uint64_t dramBytes = 0;
        std::uint64_t dramActivations = 0;
    };

    const StreamCounters&
    counters(StreamId sid) const
    {
        static const StreamCounters kZero{};
        return sid < stream_.size() ? stream_[sid] : kZero;
    }
    StreamCounters& countersFor(StreamId sid);

    double
    linkEnergyFor(const StreamCounters& c) const
    {
        return static_cast<double>(c.linkBytes) * 8.0 * cxl_.pjPerBit
            * 1e-3;
    }
    double
    dramEnergyFor(const StreamCounters& c) const
    {
        return static_cast<double>(c.dramBytes) * 8.0
            * dram_->params().rdWrPjPerBit * 1e-3
            + static_cast<double>(c.dramActivations)
            * dram_->params().actPreNj;
    }

    InPort in_{*this};
    CxlParams cxl_;
    std::unique_ptr<MemBackend> dram_;
    BandwidthResource link_;
    FaultInjector* fault_ = nullptr;

    /** Per-stream attribution (resize-on-demand by sid). */
    std::vector<StreamCounters> stream_;
    StreamCounters noStream_;

    std::uint64_t accesses_ = 0;
    double linkEnergyNj_ = 0.0;
    std::uint64_t linkBytes_ = 0;
    std::uint64_t linkRetries_ = 0;
    std::uint64_t retriesExhausted_ = 0;
    std::uint64_t poisonedReads_ = 0;
};

} // namespace ndpext

#endif // NDPEXT_CXL_EXTENDED_MEMORY_H
