/**
 * @file
 * CXL.mem Type-3 extended memory: a CXL link in front of DDR5 channels.
 *
 * Table II: 16-lane link, 200 ns link latency (excluding DRAM access),
 * 11.4 pJ/bit; backing DDR5-4800 with 4 channels x 2 ranks x 16 banks.
 * Fig. 8(b) sweeps the link latency (50/70/200 ns cases).
 */

#ifndef NDPEXT_CXL_EXTENDED_MEMORY_H
#define NDPEXT_CXL_EXTENDED_MEMORY_H

#include <cstdint>
#include <string>

#include "common/types.h"
#include "mem/dram.h"
#include "sim/resource.h"
#include "sim/stats.h"

namespace ndpext {

struct CxlParams
{
    /** One-way link latency in core cycles (200 ns @ 2 GHz = 400). */
    Cycles linkLatencyCycles = 400;
    /** Link bandwidth, bytes per core cycle (x16 CXL 3.0 ~ 121 GB/s). */
    double linkBytesPerCycle = 60.0;
    /** Link transfer energy, pJ per bit. */
    double pjPerBit = 11.4;
};

/** Completion info of one extended-memory access. */
struct CxlResult
{
    Cycles done = 0;
};

/**
 * The CXL endpoint + DDR5 device. The link is a shared bandwidth resource;
 * every access pays one round trip: request over the link, DDR5 access,
 * response over the link.
 */
class ExtendedMemory
{
  public:
    ExtendedMemory(const CxlParams& cxl, const DramTimingParams& dram,
                   std::uint64_t core_freq_mhz);

    /** Access `bytes` at `addr`, arriving at the CXL port at `now`. */
    CxlResult access(Addr addr, std::uint32_t bytes, bool is_write,
                     Cycles now);

    const CxlParams& params() const { return cxl_; }
    const DramDevice& dram() const { return dram_; }

    std::uint64_t accesses() const { return accesses_; }
    double linkEnergyNj() const { return linkEnergyNj_; }
    double dramEnergyNj() const { return dram_.dynamicEnergyNj(); }

    void report(StatGroup& stats, const std::string& prefix) const;
    void reset();

  private:
    CxlParams cxl_;
    DramDevice dram_;
    BandwidthResource link_;

    std::uint64_t accesses_ = 0;
    double linkEnergyNj_ = 0.0;
};

} // namespace ndpext

#endif // NDPEXT_CXL_EXTENDED_MEMORY_H
