#include "cxl/extended_memory.h"

#include <algorithm>

#include "telemetry/metric_registry.h"

namespace ndpext {

ExtendedMemory::ExtendedMemory(const CxlParams& cxl,
                               const MemBackendConfig& dram,
                               std::uint64_t core_freq_mhz)
    : MemObject("ext"), cxl_(cxl),
      dram_(createMemBackend(dram, core_freq_mhz)),
      link_(cxl.linkBytesPerCycle)
{
}

void
ExtendedMemory::recvAtomic(Packet& pkt)
{
    const CxlResult res =
        access(pkt.addr, pkt.bytes, pkt.isWrite(), pkt.ready, pkt.sid);
    pkt.bd.extMem += res.done - pkt.ready;
    pkt.ready = res.done;
    pkt.poisoned = res.poisoned;
}

ExtendedMemory::StreamCounters&
ExtendedMemory::countersFor(StreamId sid)
{
    if (sid == kNoStream) {
        return noStream_;
    }
    if (stream_.size() <= sid) {
        stream_.resize(sid + 1);
    }
    return stream_[sid];
}

CxlResult
ExtendedMemory::access(Addr addr, std::uint32_t bytes, bool is_write,
                       Cycles now, StreamId sid)
{
    StreamCounters& sc = countersFor(sid);
    // Request flit over the link (64 B header+address class payload).
    // A transient link error loses the transaction; the endpoint retries
    // after capped exponential backoff. Every attempt occupies link
    // bandwidth and spends transfer energy.
    Cycles t = now;
    Cycles at_device = 0;
    std::uint32_t attempt = 0;
    for (;;) {
        const Cycles req_start = link_.reserve(64, t);
        at_device =
            req_start + cxl_.linkLatencyCycles + link_.serviceCycles(64);
        linkEnergyNj_ += 64.0 * 8.0 * cxl_.pjPerBit * 1e-3;
        linkBytes_ += 64;
        sc.linkBytes += 64;
        if (fault_ == nullptr || !fault_->linkError()) {
            break;
        }
        if (attempt >= fault_->params().maxLinkRetries) {
            // Out of retries: the link layer recovers via FEC/replay at
            // a cost already paid above; count and proceed.
            ++retriesExhausted_;
            break;
        }
        ++attempt;
        ++linkRetries_;
        const Cycles backoff = std::min<Cycles>(
            fault_->params().retryBackoffCycles << (attempt - 1),
            fault_->params().retryBackoffCapCycles);
        t = at_device + backoff;
    }

    const DramResult dr = dram_->access(addr, bytes, is_write, at_device);
    sc.dramBytes += bytes;
    if (!dr.rowHit) {
        ++sc.dramActivations; // DramDevice activates on every non-hit
    }

    // Response payload back over the link.
    const Cycles rsp_start = link_.reserve(bytes, dr.done);
    const Cycles done =
        rsp_start + cxl_.linkLatencyCycles + link_.serviceCycles(bytes);

    ++accesses_;
    linkEnergyNj_ +=
        static_cast<double>(bytes) * 8.0 * cxl_.pjPerBit * 1e-3;
    linkBytes_ += bytes;
    sc.linkBytes += bytes;

    CxlResult res{done, false};
    if (!is_write && fault_ != nullptr && fault_->poisonRead(addr)) {
        res.poisoned = true;
        ++poisonedReads_;
    }
    return res;
}

void
ExtendedMemory::report(StatGroup& stats, const std::string& prefix) const
{
    stats.add(prefix + ".accesses", static_cast<double>(accesses_));
    stats.add(prefix + ".linkEnergyNj", linkEnergyNj_);
    stats.add(prefix + ".linkBytes", static_cast<double>(linkBytes_));
    stats.add(prefix + ".linkQueueCycles",
              static_cast<double>(link_.totalQueueCycles()));
    stats.add(prefix + ".linkReservations",
              static_cast<double>(link_.reservations()));
    stats.add(prefix + ".degraded.linkRetries",
              static_cast<double>(linkRetries_));
    stats.add(prefix + ".degraded.retriesExhausted",
              static_cast<double>(retriesExhausted_));
    stats.add(prefix + ".degraded.poisonedReads",
              static_cast<double>(poisonedReads_));
    dram_->report(stats, prefix + ".dram");
}

void
ExtendedMemory::registerMetrics(MetricRegistry& registry)
{
    registry.registerCounter("ext.accesses",
                             [this] { return double(accesses_); });
    registry.registerCounter("ext.linkBytes",
                             [this] { return double(linkBytes_); });
    registry.registerCounter("ext.linkEnergyNj",
                             [this] { return linkEnergyNj_; });
    registry.registerCounter("ext.linkQueueCycles", [this] {
        return double(link_.totalQueueCycles());
    });
    registry.registerCounter("ext.degraded.linkRetries",
                             [this] { return double(linkRetries_); });
    registry.registerCounter("ext.degraded.retriesExhausted",
                             [this] { return double(retriesExhausted_); });
    registry.registerCounter("ext.degraded.poisonedReads",
                             [this] { return double(poisonedReads_); });
    dram_->registerMetrics(registry, "ext.dram");
}

void
ExtendedMemory::reset()
{
    dram_->reset();
    link_.reset();
    stream_.clear();
    noStream_ = StreamCounters{};
    accesses_ = 0;
    linkEnergyNj_ = 0.0;
    linkBytes_ = 0;
    linkRetries_ = 0;
    retriesExhausted_ = 0;
    poisonedReads_ = 0;
}

} // namespace ndpext
