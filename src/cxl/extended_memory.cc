#include "cxl/extended_memory.h"

namespace ndpext {

ExtendedMemory::ExtendedMemory(const CxlParams& cxl,
                               const DramTimingParams& dram,
                               std::uint64_t core_freq_mhz)
    : cxl_(cxl), dram_(dram, core_freq_mhz), link_(cxl.linkBytesPerCycle)
{
}

CxlResult
ExtendedMemory::access(Addr addr, std::uint32_t bytes, bool is_write,
                       Cycles now)
{
    // Request flit over the link (64 B header+address class payload).
    const Cycles req_start = link_.reserve(64, now);
    const Cycles at_device =
        req_start + cxl_.linkLatencyCycles + link_.serviceCycles(64);

    const DramResult dr = dram_.access(addr, bytes, is_write, at_device);

    // Response payload back over the link.
    const Cycles rsp_start = link_.reserve(bytes, dr.done);
    const Cycles done =
        rsp_start + cxl_.linkLatencyCycles + link_.serviceCycles(bytes);

    ++accesses_;
    linkEnergyNj_ +=
        static_cast<double>(bytes + 64) * 8.0 * cxl_.pjPerBit * 1e-3;
    return CxlResult{done};
}

void
ExtendedMemory::report(StatGroup& stats, const std::string& prefix) const
{
    stats.add(prefix + ".accesses", static_cast<double>(accesses_));
    stats.add(prefix + ".linkEnergyNj", linkEnergyNj_);
    stats.add(prefix + ".linkQueueCycles",
              static_cast<double>(link_.totalQueueCycles()));
    stats.add(prefix + ".linkReservations",
              static_cast<double>(link_.reservations()));
    dram_.report(stats, prefix + ".dram");
}

void
ExtendedMemory::reset()
{
    dram_.reset();
    link_.reset();
    accesses_ = 0;
    linkEnergyNj_ = 0.0;
}

} // namespace ndpext
