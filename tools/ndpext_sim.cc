/**
 * ndpext_sim — command-line simulation driver.
 *
 * Run any built-in workload (or a trace file) on any cache-management
 * policy without writing C++:
 *
 *   ndpext_sim --workload=pr --policy=ndpext
 *   ndpext_sim --workload=recsys --policy=nexus --mem=hmc --accesses=50000
 *   ndpext_sim --trace=my.trace --policy=ndpext --stacks=2x2 --units=2x4
 *   ndpext_sim --workload=bfs --policy=host
 *   ndpext_sim --workload=pr --fault=unit:12@5M --fault-seed=7
 *   ndpext_sim --tenant=name=emb,workload=recsys,arrival=poisson,period=400 \
 *              --tenant=name=gnn,workload=bfs,period=900 --horizon=2M
 *   ndpext_sim --list
 *
 * Multi-tenant serving (src/serving): one repeatable --tenant flag per
 * co-located tenant turns the run into an open-loop serving simulation;
 * see --list-arrivals for arrival processes and their tunables, and
 * `ndpext_report slo` for the per-tenant latency/SLO view.
 *
 * Options:
 *   --workload=NAME      built-in workload (see --list)
 *   --trace=FILE         trace file instead of a built-in workload
 *   --policy=NAME        ndpext | ndpext-static | jigsaw | whirlpool |
 *                        nexus | static-interleave | host
 *   --mem=hbm|hmc        NDP memory technology
 *   --stacks=XxY         inter-stack mesh (default 4x2)
 *   --units=XxY          intra-stack mesh (default 2x4)
 *   --cache-kb=N         DRAM cache per unit in kB (default 1024, > 0)
 *   --footprint-mb=N     workload footprint (default 96)
 *   --accesses=N         accesses per core (default 20000)
 *   --epoch=N            reconfiguration interval in cycles
 *   --solver-warm-start  incremental sampler assignment (delta re-solve)
 *   --solver-budget-iters=N  deterministic anytime iteration cap
 *   --solver-budget-us=N advisory wall-clock cap per decision
 *   --seed=N             workload seed (default 42)
 *   --fault=SPEC         inject faults (repeatable). SPECs:
 *                          unit:<id>@<cycle>    kill NDP unit at cycle
 *                          stack:<id>@<cycle>   kill a whole stack
 *                          cxl-transient:p=<p>  link-error probability
 *                          cxl-poison:p=<p>     media-poison probability
 *                          dram-bit:p=<p>       cache bit-fault probability
 *                        cycles take K/M/G suffixes (5M = 5,000,000)
 *   --fault-seed=N       fault-injection RNG seed (default 1)
 *   --tenant=K=V,...     add a serving tenant (repeatable; implies the
 *                        open-loop serving frontend). Keys: name,
 *                        workload, arrival, period, req, qos, reserve-pct,
 *                        slo, arrive, depart, footprint-mb, plus any
 *                        tunable of the chosen arrival process
 *   --horizon=N          serving: last admissible arrival cycle
 *                        (K/M/G suffixes; default 2M)
 *   --threads=N          simulation threads (default 1). Results are
 *                        bit-identical for any value: the machine is
 *                        always decomposed into one shard per stack and
 *                        N only controls parallel shard execution.
 *   --mem-backend.ROLE=NAME[,key=val...]
 *                        memory backend per role (unit|ext|host), e.g.
 *                          --mem-backend.ext=frfcfs,queue=16
 *                          --mem-backend.ext=refresh,preset=lpddr5x
 *                        (--list-mem-backends prints backends, tunables
 *                        and timing presets)
 *   --checkpoint=PREFIX  write PREFIX.<epoch>.ckpt machine snapshots at
 *                        epoch barriers (crash-safe; not with host)
 *   --checkpoint-every=N snapshot every N completed epochs (default 1)
 *   --resume=FILE        restore machine state from a checkpoint and
 *                        continue; outputs are byte-identical to the
 *                        uninterrupted run at any --threads value
 *   --stats-json=FILE    write headline metrics + every counter as JSON
 *   --telemetry=PREFIX   write PREFIX.metrics.jsonl (epoch time-series),
 *                        PREFIX.trace.json (Perfetto trace) and
 *                        PREFIX.decisions.jsonl (runtime decision log);
 *                        not supported with --policy=host
 *   --telemetry-sample=N trace every Nth L1 miss per core (default 64,
 *                        0 disables packet sampling)
 *   --dump-stats         print every simulator counter
 *
 * Malformed options print a usage message and exit with status 2.
 */

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "common/atomic_file.h"
#include "common/logging.h"
#include "common/suggest.h"
#include "mem/mem_backend_registry.h"
#include "serving/serving_workload.h"
#include "system/host_system.h"
#include "system/ndp_system.h"
#include "telemetry/telemetry.h"
#include "workloads/trace_workload.h"
#include "workloads/workload.h"

using namespace ndpext;

namespace {

constexpr const char* kUsage =
    "usage: ndpext_sim [options]\n"
    "  --workload=NAME | --trace=FILE   input (default: --workload=pr)\n"
    "  --policy=NAME       ndpext | ndpext-static | jigsaw | whirlpool |\n"
    "                      nexus | static-interleave | host\n"
    "  --mem=hbm|hmc       NDP memory technology\n"
    "  --stacks=XxY        inter-stack mesh, X,Y > 0 (default 4x2)\n"
    "  --units=XxY         intra-stack mesh, X,Y > 0 (default 2x4)\n"
    "  --cache-kb=N        DRAM cache per unit in kB, N > 0\n"
    "  --footprint-mb=N    workload footprint in MB\n"
    "  --accesses=N        accesses per core\n"
    "  --epoch=N           reconfiguration interval in cycles\n"
    "  --solver-warm-start warm-start each epoch's sampler assignment\n"
    "                      from the previous one, re-solving only the\n"
    "                      delta set (changed/arrived/departed streams)\n"
    "  --solver-budget-iters=N  deterministic anytime budget: cap each\n"
    "                      placement decision at N refinement iterations\n"
    "                      (best-so-far placement is kept; 0 = off)\n"
    "  --solver-budget-us=N  advisory wall-clock budget per decision in\n"
    "                      microseconds (host-dependent; 0 = off)\n"
    "  --seed=N            workload seed\n"
    "  --fault=SPEC        unit:<id>@<cycle> | stack:<id>@<cycle> |\n"
    "                      cxl-transient:p=<p> | cxl-poison:p=<p> |\n"
    "                      dram-bit:p=<p>   (repeatable)\n"
    "  --fault-seed=N      fault-injection RNG seed\n"
    "  --tenant=K=V,...    add a serving tenant (repeatable); keys: name,\n"
    "                      workload, arrival, period, req, qos,\n"
    "                      reserve-pct, slo, arrive, depart, footprint-mb\n"
    "                      (--list-arrivals shows arrival processes)\n"
    "  --horizon=N         serving: last admissible arrival cycle\n"
    "                      (K/M/G suffixes)\n"
    "  --threads=N         simulation threads (same results for any N)\n"
    "  --mem-backend.ROLE=NAME[,key=val...]\n"
    "                      backend for ROLE in unit|ext|host\n"
    "                      (--list-mem-backends shows what is available)\n"
    "  --checkpoint=PREFIX     write PREFIX.<epoch>.ckpt at epoch barriers\n"
    "  --checkpoint-every=N    snapshot every N epochs (default 1)\n"
    "  --resume=FILE       restore from a checkpoint and continue\n"
    "  --stats-json=FILE   write metrics + all counters as JSON\n"
    "  --telemetry=PREFIX  write PREFIX.{metrics.jsonl,trace.json,\n"
    "                      decisions.jsonl} (not with --policy=host)\n"
    "  --telemetry-sample=N  trace every Nth L1 miss per core (default 64)\n"
    "  --trace-requests[=K]  serving only: end-to-end request tracing with\n"
    "                      per-tenant tail exemplars (K slowest + K\n"
    "                      uniform per epoch, default 8); adds\n"
    "                      PREFIX.exemplars.jsonl (needs --telemetry and\n"
    "                      --tenant)\n"
    "  --dump-stats        print every simulator counter\n"
    "  --list              print workloads and policies\n"
    "  --list-workloads    print the workload archetypes\n"
    "  --list-arrivals     print arrival processes and their tunables\n";

/** Print a diagnostic plus usage and exit with status 2 (bad input). */
[[noreturn]] void
usageError(const std::string& message)
{
    std::fprintf(stderr, "ndpext_sim: %s\n%s", message.c_str(), kUsage);
    std::exit(2);
}

/** Strict unsigned parse: whole string, base 10, no sign/garbage. */
bool
parseU64(const std::string& text, std::uint64_t& out)
{
    if (text.empty()
        || text.find_first_not_of("0123456789") != std::string::npos) {
        return false;
    }
    try {
        out = std::stoull(text);
    } catch (const std::exception&) {
        return false; // out of range
    }
    return true;
}

struct Options
{
    std::string workload = "pr";
    std::string trace;
    std::string policy = "ndpext";
    NdpMemType mem = NdpMemType::Hbm3;
    std::uint32_t stacksX = 4;
    std::uint32_t stacksY = 2;
    std::uint32_t unitsX = 2;
    std::uint32_t unitsY = 4;
    std::uint64_t cacheKb = 1024;
    std::uint64_t footprintMb = 96;
    std::uint64_t accesses = 20000;
    std::uint64_t epoch = 0;
    bool solverWarmStart = false;
    std::uint64_t solverBudgetIters = 0;
    std::uint64_t solverBudgetMicros = 0;
    std::uint64_t seed = 42;
    /** Raw --fault specs; parsed once the geometry is known. */
    std::vector<std::string> faultSpecs;
    std::uint64_t faultSeed = 1;
    /** Raw --tenant specs; parsed against the serving schema. */
    std::vector<std::string> tenantSpecs;
    std::uint64_t horizon = 0;
    bool horizonSet = false;
    std::uint64_t threads = 1;
    /** Per-role backend selections; unset roles keep the defaults. */
    MemBackendConfig memBackendUnit;
    bool memBackendUnitSet = false;
    MemBackendConfig memBackendExt;
    bool memBackendExtSet = false;
    MemBackendConfig memBackendHost;
    bool memBackendHostSet = false;
    std::string checkpoint;
    std::uint64_t checkpointEvery = 1;
    std::string resume;
    std::string statsJson;
    std::string telemetry;
    std::uint64_t telemetrySample = 64;
    bool traceRequests = false;
    std::uint64_t traceK = 8;
    bool dumpStats = false;
};

bool
parseGrid(const std::string& value, std::uint32_t& x, std::uint32_t& y)
{
    const auto pos = value.find('x');
    if (pos == std::string::npos) {
        return false;
    }
    std::uint64_t xv = 0;
    std::uint64_t yv = 0;
    if (!parseU64(value.substr(0, pos), xv)
        || !parseU64(value.substr(pos + 1), yv)) {
        return false;
    }
    if (xv == 0 || yv == 0 || xv > 1024 || yv > 1024) {
        return false;
    }
    x = static_cast<std::uint32_t>(xv);
    y = static_cast<std::uint32_t>(yv);
    return true;
}

/** Unsigned parse with K/M/G suffixes (5M = 5,000,000). */
bool
parseCycles(const std::string& text, std::uint64_t& out)
{
    if (text.empty()) {
        return false;
    }
    std::uint64_t scale = 1;
    std::string digits = text;
    switch (text.back()) {
      case 'K':
      case 'k':
        scale = 1'000;
        digits.pop_back();
        break;
      case 'M':
      case 'm':
        scale = 1'000'000;
        digits.pop_back();
        break;
      case 'G':
      case 'g':
        scale = 1'000'000'000;
        digits.pop_back();
        break;
      default:
        break;
    }
    if (!parseU64(digits, out)) {
        return false;
    }
    out *= scale;
    return true;
}

/** `--list-workloads`: the workload archetypes, one per line. */
void
printWorkloads()
{
    std::printf("workloads (--workload=NAME or --tenant=...,workload=NAME"
                "):\n");
    for (const auto& name : allWorkloadNames()) {
        std::printf("  %s\n", name.c_str());
    }
}

/** `--list-arrivals`: registered arrival processes and tunables. */
void
printArrivals()
{
    auto& registry = ArrivalRegistry::instance();
    std::printf("arrival processes (--tenant=...,arrival=NAME"
                "[,key=val...]):\n");
    for (const std::string& name : registry.names()) {
        const ArrivalInfo* info = registry.find(name);
        std::printf("  %-8s %s\n", name.c_str(),
                    info->description.c_str());
        for (const ArrivalTunable& t : info->tunables) {
            std::printf("           %-14s %s\n", t.key.c_str(),
                        t.description.c_str());
        }
    }
}

/** `--list-mem-backends`: registered backends, tunables and presets. */
void
printMemBackends()
{
    auto& registry = MemBackendRegistry::instance();
    std::printf("memory backends (--mem-backend.ROLE=NAME[,key=val...], "
                "ROLE in unit|ext|host):\n");
    for (const std::string& name : registry.names()) {
        const MemBackendInfo* info = registry.find(name);
        std::printf("  %-8s %s\n", name.c_str(),
                    info->description.c_str());
        for (const MemTunable& t : info->tunables) {
            std::printf("           %-8s %s\n", t.key.c_str(),
                        t.description.c_str());
        }
    }
    std::printf("timing presets (key `preset=NAME`, any backend):");
    for (const std::string& name : dramPresetNames()) {
        std::printf(" %s", name.c_str());
    }
    std::printf("\n");
}

Options
parseArgs(int argc, char** argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char* prefix) -> std::string {
            return arg.substr(std::string(prefix).size());
        };
        auto number = [&](const char* prefix) -> std::uint64_t {
            std::uint64_t out = 0;
            if (!parseU64(value(prefix), out)) {
                usageError("bad " + std::string(prefix, strlen(prefix) - 1)
                           + ": '" + value(prefix)
                           + "' (expected a non-negative integer)");
            }
            return out;
        };
        if (arg == "--list") {
            std::printf("workloads:");
            for (const auto& name : allWorkloadNames()) {
                std::printf(" %s", name.c_str());
            }
            std::printf("\npolicies: ndpext ndpext-static jigsaw "
                        "whirlpool nexus static-interleave host\n");
            std::exit(0);
        } else if (arg == "--list-mem-backends") {
            printMemBackends();
            std::exit(0);
        } else if (arg == "--list-workloads") {
            printWorkloads();
            std::exit(0);
        } else if (arg == "--list-arrivals") {
            printArrivals();
            std::exit(0);
        } else if (arg.rfind("--mem-backend.", 0) == 0) {
            const std::string rest = value("--mem-backend.");
            const auto eq = rest.find('=');
            if (eq == std::string::npos) {
                usageError("bad " + arg
                           + " (expected --mem-backend.ROLE=NAME)");
            }
            const std::string role = rest.substr(0, eq);
            const std::string spec = rest.substr(eq + 1);
            MemBackendConfig* target = nullptr;
            bool* set = nullptr;
            if (role == "unit") {
                target = &opt.memBackendUnit;
                set = &opt.memBackendUnitSet;
            } else if (role == "ext") {
                target = &opt.memBackendExt;
                set = &opt.memBackendExtSet;
            } else if (role == "host") {
                target = &opt.memBackendHost;
                set = &opt.memBackendHostSet;
            } else {
                usageError("bad --mem-backend role: '" + role
                           + "' (expected unit|ext|host)");
            }
            std::string error;
            if (!MemBackendConfig::parseSpec(spec, target, &error)) {
                usageError("bad --mem-backend." + role + ": " + error);
            }
            *set = true;
        } else if (arg.rfind("--workload=", 0) == 0) {
            opt.workload = value("--workload=");
        } else if (arg.rfind("--trace=", 0) == 0) {
            opt.trace = value("--trace=");
        } else if (arg.rfind("--policy=", 0) == 0) {
            opt.policy = value("--policy=");
        } else if (arg.rfind("--mem=", 0) == 0) {
            const std::string m = value("--mem=");
            if (m == "hbm") {
                opt.mem = NdpMemType::Hbm3;
            } else if (m == "hmc") {
                opt.mem = NdpMemType::Hmc2;
            } else {
                usageError("bad --mem: '" + m + "' (expected hbm|hmc)");
            }
        } else if (arg.rfind("--stacks=", 0) == 0) {
            if (!parseGrid(value("--stacks="), opt.stacksX, opt.stacksY)) {
                usageError("bad --stacks: '" + value("--stacks=")
                           + "' (expected XxY with X,Y in 1..1024)");
            }
        } else if (arg.rfind("--units=", 0) == 0) {
            if (!parseGrid(value("--units="), opt.unitsX, opt.unitsY)) {
                usageError("bad --units: '" + value("--units=")
                           + "' (expected XxY with X,Y in 1..1024)");
            }
        } else if (arg.rfind("--cache-kb=", 0) == 0) {
            opt.cacheKb = number("--cache-kb=");
            if (opt.cacheKb == 0) {
                usageError("bad --cache-kb: 0 (the DRAM cache needs at "
                           "least one row per unit)");
            }
        } else if (arg.rfind("--footprint-mb=", 0) == 0) {
            opt.footprintMb = number("--footprint-mb=");
            if (opt.footprintMb == 0) {
                usageError("bad --footprint-mb: 0");
            }
        } else if (arg.rfind("--accesses=", 0) == 0) {
            opt.accesses = number("--accesses=");
        } else if (arg.rfind("--epoch=", 0) == 0) {
            opt.epoch = number("--epoch=");
        } else if (arg == "--solver-warm-start") {
            opt.solverWarmStart = true;
        } else if (arg.rfind("--solver-budget-iters=", 0) == 0) {
            opt.solverBudgetIters = number("--solver-budget-iters=");
        } else if (arg.rfind("--solver-budget-us=", 0) == 0) {
            opt.solverBudgetMicros = number("--solver-budget-us=");
        } else if (arg.rfind("--seed=", 0) == 0) {
            opt.seed = number("--seed=");
        } else if (arg.rfind("--fault=", 0) == 0) {
            opt.faultSpecs.push_back(value("--fault="));
        } else if (arg.rfind("--fault-seed=", 0) == 0) {
            opt.faultSeed = number("--fault-seed=");
        } else if (arg.rfind("--tenant=", 0) == 0) {
            opt.tenantSpecs.push_back(value("--tenant="));
        } else if (arg.rfind("--horizon=", 0) == 0) {
            if (!parseCycles(value("--horizon="), opt.horizon)
                || opt.horizon == 0) {
                usageError("bad --horizon: '" + value("--horizon=")
                           + "' (expected a positive cycle count, "
                             "K/M/G suffixes allowed)");
            }
            opt.horizonSet = true;
        } else if (arg.rfind("--threads=", 0) == 0) {
            opt.threads = number("--threads=");
            if (opt.threads == 0 || opt.threads > 1024) {
                usageError("bad --threads: '" + value("--threads=")
                           + "' (expected 1..1024)");
            }
        } else if (arg.rfind("--checkpoint=", 0) == 0) {
            opt.checkpoint = value("--checkpoint=");
            if (opt.checkpoint.empty()) {
                usageError("bad --checkpoint: empty output prefix");
            }
        } else if (arg.rfind("--checkpoint-every=", 0) == 0) {
            opt.checkpointEvery = number("--checkpoint-every=");
            if (opt.checkpointEvery == 0) {
                usageError("bad --checkpoint-every: 0 (expected >= 1)");
            }
        } else if (arg.rfind("--resume=", 0) == 0) {
            opt.resume = value("--resume=");
            if (opt.resume.empty()) {
                usageError("bad --resume: empty file name");
            }
        } else if (arg.rfind("--stats-json=", 0) == 0) {
            opt.statsJson = value("--stats-json=");
            if (opt.statsJson.empty()) {
                usageError("bad --stats-json: empty file name");
            }
        } else if (arg.rfind("--telemetry=", 0) == 0) {
            opt.telemetry = value("--telemetry=");
            if (opt.telemetry.empty()) {
                usageError("bad --telemetry: empty output prefix");
            }
        } else if (arg.rfind("--telemetry-sample=", 0) == 0) {
            opt.telemetrySample = number("--telemetry-sample=");
        } else if (arg == "--trace-requests") {
            opt.traceRequests = true;
        } else if (arg.rfind("--trace-requests=", 0) == 0) {
            opt.traceRequests = true;
            opt.traceK = number("--trace-requests=");
            if (opt.traceK == 0) {
                usageError("bad --trace-requests: 0 (expected >= 1)");
            }
        } else if (arg == "--dump-stats") {
            opt.dumpStats = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf("%s", kUsage);
            std::exit(0);
        } else {
            usageError("unknown argument: '" + arg + "'");
        }
    }
    if (opt.policy != "host") {
        // Validate the policy name up front so a typo is a usage error,
        // not a mid-run abort.
        const char* known[] = {"ndpext",    "ndpext-static",
                               "jigsaw",    "whirlpool",
                               "nexus",     "static-interleave"};
        bool ok = false;
        for (const char* name : known) {
            ok = ok || opt.policy == name;
        }
        if (!ok) {
            usageError("unknown --policy: '" + opt.policy + "'");
        }
    }
    return opt;
}

void
printResult(const RunResult& r, bool dump_stats)
{
    std::printf("workload        %s\n", r.workload.c_str());
    std::printf("policy          %s\n", r.policy.c_str());
    std::printf("cycles          %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("accesses        %llu\n",
                static_cast<unsigned long long>(r.accesses));
    std::printf("l1 hit rate     %.3f\n",
                r.accesses == 0
                    ? 0.0
                    : static_cast<double>(r.l1Hits)
                        / static_cast<double>(r.accesses));
    std::printf("cache miss rate %.3f\n", r.missRate);
    std::printf("avg mem latency %.1f cycles\n", r.avgMemLatency());
    std::printf("avg icn latency %.1f cycles\n", r.avgIcnCycles());
    std::printf("reconfigs       %llu\n",
                static_cast<unsigned long long>(r.reconfigurations));
    std::printf("energy          %.3f mJ\n", r.energy.totalNj() * 1e-6);
    if (r.engineWallMicros != 0) {
        // stderr: stdout reports are byte-identical across runs (a
        // documented contract); the wall-clock rate is host-dependent.
        std::fprintf(stderr, "engine rate     %.0f accesses/s (%.1f ms)\n",
                     r.engineAccessesPerSec(),
                     static_cast<double>(r.engineWallMicros) * 1e-3);
    }
    if (r.degraded.any()) {
        const auto& d = r.degraded;
        std::printf("--- degraded mode ---\n");
        std::printf("failed units        %llu\n",
                    static_cast<unsigned long long>(d.failedUnits));
        std::printf("emergency reconfigs %llu\n",
                    static_cast<unsigned long long>(d.emergencyReconfigs));
        std::printf("redirected accesses %llu\n",
                    static_cast<unsigned long long>(d.failedUnitRedirects));
        std::printf("link retries        %llu\n",
                    static_cast<unsigned long long>(d.linkRetries));
        std::printf("retries exhausted   %llu\n",
                    static_cast<unsigned long long>(d.retriesExhausted));
        std::printf("poisoned reads      %llu\n",
                    static_cast<unsigned long long>(d.poisonedReads));
        std::printf("poison escalations  %llu\n",
                    static_cast<unsigned long long>(d.poisonEscalations));
        std::printf("dram bit refetches  %llu\n",
                    static_cast<unsigned long long>(d.dramFaultRefetches));
        std::printf("cycles degraded     %llu\n",
                    static_cast<unsigned long long>(d.cyclesDegraded));
    }
    if (dump_stats) {
        std::printf("--- all counters ---\n");
        r.stats.dump(std::cout);
    }
}

/**
 * Write headline metrics plus the full counter set as one JSON object:
 * scalars first, then every StatGroup counter under "stats". Crash-safe:
 * temp-file + rename, so the file is never observably torn.
 */
void writeStatsJsonBody(const RunResult& r, std::ostream& out);

bool
writeStatsJson(const RunResult& r, const std::string& path)
{
    return writeFileAtomic(path, [&r](std::ostream& out) {
        writeStatsJsonBody(r, out);
    });
}

void
writeStatsJsonBody(const RunResult& r, std::ostream& out)
{
    out << "{\n";
    out << "  \"workload\": \"" << r.workload << "\",\n";
    out << "  \"policy\": \"" << r.policy << "\",\n";
    out << "  \"cycles\": " << r.cycles << ",\n";
    out << "  \"accesses\": " << r.accesses << ",\n";
    out << "  \"l1Hits\": " << r.l1Hits << ",\n";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", r.missRate);
    out << "  \"missRate\": " << buf << ",\n";
    std::snprintf(buf, sizeof(buf), "%.17g", r.avgMemLatency());
    out << "  \"avgMemLatencyCycles\": " << buf << ",\n";
    std::snprintf(buf, sizeof(buf), "%.17g", r.energy.totalNj());
    out << "  \"energyNj\": " << buf << ",\n";
    out << "  \"reconfigurations\": " << r.reconfigurations << ",\n";
    // Host-dependent engine throughput: top-level only (never under
    // "stats" except the Micros-suffixed twin), so bit-identity checks
    // stay clean while CI can gate on the rate.
    out << "  \"engineWallMicros\": " << r.engineWallMicros << ",\n";
    std::snprintf(buf, sizeof(buf), "%.17g", r.engineAccessesPerSec());
    out << "  \"engineAccessesPerSec\": " << buf << ",\n";
    out << "  \"writeExceptions\": " << r.writeExceptions << ",\n";
    out << "  \"degraded\": {\n";
    out << "    \"failedUnits\": " << r.degraded.failedUnits << ",\n";
    out << "    \"linkRetries\": " << r.degraded.linkRetries << ",\n";
    out << "    \"poisonEscalations\": " << r.degraded.poisonEscalations
        << ",\n";
    out << "    \"failedUnitRedirects\": "
        << r.degraded.failedUnitRedirects << ",\n";
    out << "    \"dramFaultRefetches\": " << r.degraded.dramFaultRefetches
        << ",\n";
    out << "    \"cyclesDegraded\": " << r.degraded.cyclesDegraded
        << "\n  },\n";
    out << "  \"stats\": ";
    r.stats.dumpJson(out);
    out << "\n}\n";
}

} // namespace

int
main(int argc, char** argv)
{
    const Options opt = parseArgs(argc, argv);

    SystemConfig cfg = SystemConfig::scaledDefault();
    cfg.stacksX = opt.stacksX;
    cfg.stacksY = opt.stacksY;
    cfg.unitsX = opt.unitsX;
    cfg.unitsY = opt.unitsY;
    cfg.memType = opt.mem;
    cfg.unitCacheBytes = opt.cacheKb * 1024;
    cfg.numThreads = static_cast<std::uint32_t>(opt.threads);
    if (opt.epoch != 0) {
        cfg.runtime.epochCycles = opt.epoch;
    }
    cfg.runtime.solverWarmStart = opt.solverWarmStart;
    cfg.runtime.solverBudgetIters = opt.solverBudgetIters;
    cfg.runtime.solverBudgetMicros = opt.solverBudgetMicros;
    if (opt.memBackendUnitSet) {
        cfg.memBackendUnit = opt.memBackendUnit;
    }
    if (opt.memBackendExtSet) {
        cfg.memBackendExt = opt.memBackendExt;
    }
    if (opt.memBackendHostSet) {
        cfg.memBackendHost = opt.memBackendHost;
    }

    cfg.faults.seed = opt.faultSeed;
    for (const std::string& spec : opt.faultSpecs) {
        std::string error;
        if (!parseFaultSpec(spec, cfg.unitsX * cfg.unitsY, cfg.faults,
                            &error)) {
            usageError("bad --fault: " + error);
        }
    }
    for (const UnitFailure& f : cfg.faults.unitFailures) {
        if (f.unit >= cfg.numUnits()) {
            usageError("bad --fault: unit " + std::to_string(f.unit)
                       + " >= " + std::to_string(cfg.numUnits())
                       + " units");
        }
    }
    for (const std::string& spec : opt.tenantSpecs) {
        TenantSpec tenant;
        std::string error;
        if (!parseTenantSpec(spec, &tenant, &error)) {
            usageError("bad --tenant: " + error);
        }
        cfg.serving.tenants.push_back(std::move(tenant));
    }
    if (opt.horizonSet) {
        if (!cfg.serving.enabled()) {
            usageError("--horizon requires at least one --tenant");
        }
        cfg.serving.horizonCycles = opt.horizon;
    }
    if (cfg.serving.enabled() && !opt.trace.empty()) {
        usageError("--tenant cannot be combined with --trace");
    }
    if (cfg.serving.enabled() && opt.policy == "host") {
        usageError("--tenant is not supported with --policy=host");
    }
    if (opt.policy == "host" && cfg.faults.anyFaults()) {
        usageError("--fault is not supported with --policy=host");
    }
    if (opt.policy == "host" && !opt.telemetry.empty()) {
        usageError("--telemetry is not supported with --policy=host");
    }
    if (opt.traceRequests && opt.telemetry.empty()) {
        usageError("--trace-requests needs --telemetry (exemplars are a "
                   "telemetry artifact)");
    }
    if (opt.traceRequests && !cfg.serving.enabled()) {
        usageError("--trace-requests needs at least one --tenant "
                   "(requests only exist in serving runs)");
    }
    if (opt.policy == "host"
        && (!opt.checkpoint.empty() || !opt.resume.empty())) {
        usageError("--checkpoint/--resume are not supported with "
                   "--policy=host");
    }

    // Recoverable validation of flag-derived state: a typo exits with a
    // diagnostic instead of tripping finalize()'s internal asserts.
    std::string cfg_error;
    if (!cfg.validate(&cfg_error)) {
        std::fprintf(stderr, "ndpext_sim: invalid configuration: %s\n",
                     cfg_error.c_str());
        return 1;
    }
    cfg.finalize();

    std::unique_ptr<Workload> workload;
    if (cfg.serving.enabled()) {
        auto serving = std::make_unique<ServingWorkload>(
            cfg.serving, cfg.runtime.epochCycles);
        WorkloadParams params;
        params.numCores = cfg.numUnits();
        params.footprintBytes = opt.footprintMb * 1_MiB;
        params.accessesPerCore = opt.accesses;
        params.seed = opt.seed;
        serving->prepare(params);
        workload = std::move(serving);
    } else if (!opt.trace.empty()) {
        std::string error;
        workload =
            TraceWorkload::parseFile(opt.trace, cfg.numUnits(), &error);
        if (workload == nullptr) {
            usageError(error);
        }
    } else {
        const auto names = allWorkloadNames();
        if (std::find(names.begin(), names.end(), opt.workload)
            == names.end()) {
            std::string why = "unknown --workload: '" + opt.workload + "'";
            const std::string hint = closestName(opt.workload, names);
            if (!hint.empty()) {
                why += " (did you mean '" + hint + "'?)";
            } else {
                why += " (--list-workloads prints the available "
                       "workloads)";
            }
            usageError(why);
        }
        workload = makeWorkload(opt.workload);
        WorkloadParams params;
        params.numCores = cfg.numUnits();
        params.footprintBytes = opt.footprintMb * 1_MiB;
        params.accessesPerCore = opt.accesses;
        params.seed = opt.seed;
        workload->prepare(params);
    }

    // Crash marker: dropped before the run, removed only once every
    // output artifact is complete. A leftover marker tells consumers
    // (ndpext_report check) that the producing run died mid-epoch and
    // its outputs -- though individually parseable thanks to atomic
    // writes -- describe an unfinished run.
    std::string marker;
    if (!opt.telemetry.empty()) {
        marker = opt.telemetry + ".inprogress";
    } else if (!opt.statsJson.empty()) {
        marker = opt.statsJson + ".inprogress";
    }
    if (!marker.empty()) {
        std::ofstream m(marker);
        m << "ndpext_sim run in progress\n";
        if (!m) {
            std::fprintf(stderr,
                         "ndpext_sim: cannot write marker file '%s'\n",
                         marker.c_str());
            return 1;
        }
    }

    RunResult result;
    if (opt.policy == "host") {
        HostParams hp;
        hp.numCores = cfg.numUnits();
        hp.meshX = 8;
        hp.meshY = (hp.numCores + 7) / 8;
        hp.numCores = hp.meshX * hp.meshY;
        if (hp.numCores != cfg.numUnits()) {
            usageError("--policy=host needs a core count divisible by 8");
        }
        hp.dram = cfg.hostMemBackend();
        HostSystem host(hp);
        result = host.run(*workload);
    } else {
        NdpSystem system(cfg, policyFromName(opt.policy));
        std::unique_ptr<Telemetry> telemetry;
        if (!opt.telemetry.empty()) {
            TelemetryConfig tcfg;
            tcfg.outPrefix = opt.telemetry;
            tcfg.packetSampleEvery = opt.telemetrySample;
            tcfg.traceRequests = opt.traceRequests;
            tcfg.traceSlowK = opt.traceK;
            tcfg.traceUniformK = opt.traceK;
            telemetry = std::make_unique<Telemetry>(tcfg);
            system.attachTelemetry(telemetry.get());
            system.addHeartbeatPath(opt.telemetry + ".heartbeat.json");
        }
        if (!opt.checkpoint.empty()) {
            system.setCheckpointing(opt.checkpoint, opt.checkpointEvery);
            system.addHeartbeatPath(opt.checkpoint + ".heartbeat.json");
        }
        if (!opt.resume.empty()) {
            // Bad/corrupt/mismatched checkpoint files are user input:
            // a diagnostic and a nonzero exit, never an abort.
            std::string error;
            if (!system.setResume(opt.resume, *workload, &error)) {
                std::fprintf(stderr, "ndpext_sim: %s\n", error.c_str());
                return 1;
            }
            // stderr: stdout stays byte-identical to an uninterrupted
            // run (the documented resume contract).
            std::fprintf(stderr,
                         "ndpext_sim: resuming '%s' at epoch %llu\n",
                         opt.resume.c_str(),
                         static_cast<unsigned long long>(
                             system.resumeEpoch()));
        }
        result = system.run(*workload);
        if (telemetry != nullptr) {
            std::string error;
            if (!telemetry->writeAll(&error)) {
                std::fprintf(stderr, "ndpext_sim: %s\n", error.c_str());
                return 1;
            }
        }
    }
    printResult(result, opt.dumpStats);
    if (!opt.statsJson.empty()
        && !writeStatsJson(result, opt.statsJson)) {
        std::fprintf(stderr, "ndpext_sim: cannot write --stats-json file '%s'\n",
                     opt.statsJson.c_str());
        return 1;
    }
    if (!marker.empty()) {
        std::remove(marker.c_str());
    }
    return 0;
}
