/**
 * ndpext_sim — command-line simulation driver.
 *
 * Run any built-in workload (or a trace file) on any cache-management
 * policy without writing C++:
 *
 *   ndpext_sim --workload=pr --policy=ndpext
 *   ndpext_sim --workload=recsys --policy=nexus --mem=hmc --accesses=50000
 *   ndpext_sim --trace=my.trace --policy=ndpext --stacks=2x2 --units=2x4
 *   ndpext_sim --workload=bfs --policy=host
 *   ndpext_sim --list
 *
 * Options:
 *   --workload=NAME      built-in workload (see --list)
 *   --trace=FILE         trace file instead of a built-in workload
 *   --policy=NAME        ndpext | ndpext-static | jigsaw | whirlpool |
 *                        nexus | static-interleave | host
 *   --mem=hbm|hmc        NDP memory technology
 *   --stacks=XxY         inter-stack mesh (default 4x2)
 *   --units=XxY          intra-stack mesh (default 2x4)
 *   --cache-kb=N         DRAM cache per unit in kB (default 1024)
 *   --footprint-mb=N     workload footprint (default 96)
 *   --accesses=N         accesses per core (default 20000)
 *   --epoch=N            reconfiguration interval in cycles
 *   --seed=N             workload seed (default 42)
 *   --dump-stats         print every simulator counter
 */

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "common/logging.h"
#include "system/host_system.h"
#include "system/ndp_system.h"
#include "workloads/trace_workload.h"
#include "workloads/workload.h"

using namespace ndpext;

namespace {

struct Options
{
    std::string workload = "pr";
    std::string trace;
    std::string policy = "ndpext";
    NdpMemType mem = NdpMemType::Hbm3;
    std::uint32_t stacksX = 4;
    std::uint32_t stacksY = 2;
    std::uint32_t unitsX = 2;
    std::uint32_t unitsY = 4;
    std::uint64_t cacheKb = 1024;
    std::uint64_t footprintMb = 96;
    std::uint64_t accesses = 20000;
    std::uint64_t epoch = 0;
    std::uint64_t seed = 42;
    bool dumpStats = false;
};

bool
parseGrid(const std::string& value, std::uint32_t& x, std::uint32_t& y)
{
    const auto pos = value.find('x');
    if (pos == std::string::npos) {
        return false;
    }
    x = static_cast<std::uint32_t>(std::stoul(value.substr(0, pos)));
    y = static_cast<std::uint32_t>(std::stoul(value.substr(pos + 1)));
    return x > 0 && y > 0;
}

Options
parseArgs(int argc, char** argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        auto value = [&](const char* prefix) -> std::string {
            return arg.substr(std::string(prefix).size());
        };
        if (arg == "--list") {
            std::printf("workloads:");
            for (const auto& name : allWorkloadNames()) {
                std::printf(" %s", name.c_str());
            }
            std::printf("\npolicies: ndpext ndpext-static jigsaw "
                        "whirlpool nexus static-interleave host\n");
            std::exit(0);
        } else if (arg.rfind("--workload=", 0) == 0) {
            opt.workload = value("--workload=");
        } else if (arg.rfind("--trace=", 0) == 0) {
            opt.trace = value("--trace=");
        } else if (arg.rfind("--policy=", 0) == 0) {
            opt.policy = value("--policy=");
        } else if (arg.rfind("--mem=", 0) == 0) {
            const std::string m = value("--mem=");
            if (m == "hbm") {
                opt.mem = NdpMemType::Hbm3;
            } else if (m == "hmc") {
                opt.mem = NdpMemType::Hmc2;
            } else {
                NDP_FATAL("bad --mem: ", m);
            }
        } else if (arg.rfind("--stacks=", 0) == 0) {
            if (!parseGrid(value("--stacks="), opt.stacksX, opt.stacksY)) {
                NDP_FATAL("bad --stacks (expected XxY)");
            }
        } else if (arg.rfind("--units=", 0) == 0) {
            if (!parseGrid(value("--units="), opt.unitsX, opt.unitsY)) {
                NDP_FATAL("bad --units (expected XxY)");
            }
        } else if (arg.rfind("--cache-kb=", 0) == 0) {
            opt.cacheKb = std::stoull(value("--cache-kb="));
        } else if (arg.rfind("--footprint-mb=", 0) == 0) {
            opt.footprintMb = std::stoull(value("--footprint-mb="));
        } else if (arg.rfind("--accesses=", 0) == 0) {
            opt.accesses = std::stoull(value("--accesses="));
        } else if (arg.rfind("--epoch=", 0) == 0) {
            opt.epoch = std::stoull(value("--epoch="));
        } else if (arg.rfind("--seed=", 0) == 0) {
            opt.seed = std::stoull(value("--seed="));
        } else if (arg == "--dump-stats") {
            opt.dumpStats = true;
        } else if (arg == "--help" || arg == "-h") {
            std::printf("see the header of tools/ndpext_sim.cc for "
                        "usage; --list prints workloads/policies\n");
            std::exit(0);
        } else {
            NDP_FATAL("unknown argument: ", arg, " (try --help)");
        }
    }
    return opt;
}

void
printResult(const RunResult& r, bool dump_stats)
{
    std::printf("workload        %s\n", r.workload.c_str());
    std::printf("policy          %s\n", r.policy.c_str());
    std::printf("cycles          %llu\n",
                static_cast<unsigned long long>(r.cycles));
    std::printf("accesses        %llu\n",
                static_cast<unsigned long long>(r.accesses));
    std::printf("l1 hit rate     %.3f\n",
                r.accesses == 0
                    ? 0.0
                    : static_cast<double>(r.l1Hits)
                        / static_cast<double>(r.accesses));
    std::printf("cache miss rate %.3f\n", r.missRate);
    std::printf("avg mem latency %.1f cycles\n", r.avgMemLatency());
    std::printf("avg icn latency %.1f cycles\n", r.avgIcnCycles());
    std::printf("reconfigs       %llu\n",
                static_cast<unsigned long long>(r.reconfigurations));
    std::printf("energy          %.3f mJ\n", r.energy.totalNj() * 1e-6);
    if (dump_stats) {
        std::printf("--- all counters ---\n");
        r.stats.dump(std::cout);
    }
}

} // namespace

int
main(int argc, char** argv)
{
    const Options opt = parseArgs(argc, argv);

    SystemConfig cfg = SystemConfig::scaledDefault();
    cfg.stacksX = opt.stacksX;
    cfg.stacksY = opt.stacksY;
    cfg.unitsX = opt.unitsX;
    cfg.unitsY = opt.unitsY;
    cfg.memType = opt.mem;
    cfg.unitCacheBytes = opt.cacheKb * 1024;
    if (opt.epoch != 0) {
        cfg.runtime.epochCycles = opt.epoch;
    }
    cfg.finalize();

    std::unique_ptr<Workload> workload;
    if (!opt.trace.empty()) {
        workload = TraceWorkload::parseFile(opt.trace, cfg.numUnits());
    } else {
        workload = makeWorkload(opt.workload);
        WorkloadParams params;
        params.numCores = cfg.numUnits();
        params.footprintBytes = opt.footprintMb * 1_MiB;
        params.accessesPerCore = opt.accesses;
        params.seed = opt.seed;
        workload->prepare(params);
    }

    RunResult result;
    if (opt.policy == "host") {
        HostParams hp;
        hp.numCores = cfg.numUnits();
        hp.meshX = 8;
        hp.meshY = (hp.numCores + 7) / 8;
        hp.numCores = hp.meshX * hp.meshY;
        if (hp.numCores != cfg.numUnits()) {
            NDP_FATAL("--policy=host needs a core count divisible by 8");
        }
        HostSystem host(hp);
        result = host.run(*workload);
    } else {
        NdpSystem system(cfg, policyFromName(opt.policy));
        result = system.run(*workload);
    }
    printResult(result, opt.dumpStats);
    return 0;
}
