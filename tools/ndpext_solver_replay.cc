/**
 * @file
 * Replay recorded placement decisions through the cold and warm-start
 * solvers and assert placement-quality parity.
 *
 * Input is a DecisionLog (PREFIX.decisions.jsonl from `ndpext_sim
 * --telemetry=PREFIX`). For every consecutive pair of decisions the tool
 *   1. rebuilds the sampler-assignment graph from the recorded demands,
 *   2. solves it cold (from scratch) and warm (seeded with the previous
 *      decision's replayed assignment, re-solving only the delta set
 *      derived from demand fingerprints -- the same derivation the
 *      runtime uses), and
 *   3. checks that both cover exactly the same number of streams, and
 *      that an empty delta reproduces the previous assignment
 *      bit-identically with zero augmenting paths.
 *
 * With --budget-iters=N it additionally replays Algorithm 1 per decision
 * at full precision and with the deterministic anytime budget, reporting
 * the objective regret and failing if it exceeds --max-regret-pct.
 *
 * Exit codes: 0 parity holds, 1 parity/regret violation, 2 usage or
 * input error.
 */

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "runtime/ndp_runtime.h"
#include "runtime/sampler_assign.h"
#include "telemetry/tiny_json.h"

namespace {

using namespace ndpext;

constexpr const char* kUsage =
    "usage: ndpext_solver_replay PREFIX|FILE.decisions.jsonl [options]\n"
    "\n"
    "Re-run recorded placement decisions through cold and warm-start\n"
    "solvers, asserting placement-quality parity.\n"
    "\n"
    "options:\n"
    "  --samplers=N        samplers per unit (default 4)\n"
    "  --budget-iters=N    also replay Algorithm 1 full vs budget-capped\n"
    "  --max-regret-pct=P  fail when the budget-capped objective drops\n"
    "                      more than P%% below the full solve (default 50)\n"
    "  --rows-per-unit=N   capacity for the Algorithm 1 replay (default\n"
    "                      256 rows)\n"
    "  --row-bytes=N       row size for the Algorithm 1 replay (default\n"
    "                      2048)\n"
    "  -v                  per-decision detail\n";

[[noreturn]] void
usageError(const std::string& msg)
{
    std::fprintf(stderr, "ndpext_solver_replay: %s\n%s", msg.c_str(),
                 kUsage);
    std::exit(2);
}

struct Options
{
    std::string input;
    std::uint32_t samplers = 4;
    std::uint64_t budgetIters = 0;
    double maxRegretPct = 50.0;
    std::uint32_t rowsPerUnit = 256;
    std::uint32_t rowBytes = 2048;
    bool verbose = false;
};

std::uint64_t
number(const std::string& arg, const char* prefix)
{
    const std::string v = arg.substr(std::strlen(prefix));
    try {
        return std::stoull(v);
    } catch (...) {
        usageError("bad number in " + arg);
    }
}

Options
parseArgs(int argc, char** argv)
{
    Options opt;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "-h" || arg == "--help") {
            std::fputs(kUsage, stdout);
            std::exit(0);
        } else if (arg == "-v") {
            opt.verbose = true;
        } else if (arg.rfind("--samplers=", 0) == 0) {
            opt.samplers = static_cast<std::uint32_t>(
                number(arg, "--samplers="));
        } else if (arg.rfind("--budget-iters=", 0) == 0) {
            opt.budgetIters = number(arg, "--budget-iters=");
        } else if (arg.rfind("--max-regret-pct=", 0) == 0) {
            try {
                opt.maxRegretPct =
                    std::stod(arg.substr(std::strlen("--max-regret-pct=")));
            } catch (...) {
                usageError("bad number in " + arg);
            }
        } else if (arg.rfind("--rows-per-unit=", 0) == 0) {
            opt.rowsPerUnit = static_cast<std::uint32_t>(
                number(arg, "--rows-per-unit="));
        } else if (arg.rfind("--row-bytes=", 0) == 0) {
            opt.rowBytes = static_cast<std::uint32_t>(
                number(arg, "--row-bytes="));
        } else if (!arg.empty() && arg[0] == '-') {
            usageError("unknown option " + arg);
        } else if (opt.input.empty()) {
            opt.input = arg;
        } else {
            usageError("more than one input given");
        }
    }
    if (opt.input.empty()) {
        usageError("missing decision-log prefix");
    }
    if (opt.samplers == 0) {
        usageError("bad --samplers: 0");
    }
    return opt;
}

/** One decision, rebuilt from its JSONL record. */
struct Decision
{
    std::string kind;
    std::uint64_t epoch = 0;
    std::vector<StreamDemand> demands;
    std::uint32_t numUnits = 0;
};

std::vector<std::uint64_t>
u64Array(const json::Value* v)
{
    std::vector<std::uint64_t> out;
    if (v != nullptr && v->isArray()) {
        out.reserve(v->array.size());
        for (const auto& e : v->array) {
            out.push_back(static_cast<std::uint64_t>(e->number));
        }
    }
    return out;
}

std::vector<double>
dArray(const json::Value* v)
{
    std::vector<double> out;
    if (v != nullptr && v->isArray()) {
        out.reserve(v->array.size());
        for (const auto& e : v->array) {
            out.push_back(e->number);
        }
    }
    return out;
}

bool
loadDecisions(const std::string& path, std::vector<Decision>& out,
              std::string* err)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        *err = "cannot open " + path;
        return false;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::vector<json::ValuePtr> lines;
    if (!json::parseLines(buf.str(), lines, err)) {
        return false;
    }
    for (const auto& rec : lines) {
        Decision d;
        d.kind = rec->str("kind");
        d.epoch = static_cast<std::uint64_t>(rec->num("epoch"));
        const json::Value* assign = rec->get("samplerAssignment");
        d.numUnits = assign == nullptr
            ? 0
            : static_cast<std::uint32_t>(assign->array.size());
        const json::Value* demands = rec->get("demands");
        if (demands != nullptr) {
            for (const auto& jd : demands->array) {
                StreamDemand sd;
                sd.sid = static_cast<StreamId>(jd->num("sid"));
                sd.footprintBytes =
                    static_cast<std::uint64_t>(jd->num("footprintBytes"));
                sd.granuleBytes =
                    static_cast<std::uint32_t>(jd->num("granuleBytes"));
                const json::Value* ro = jd->get("readOnly");
                sd.readOnly = ro != nullptr && ro->boolean;
                const json::Value* af = jd->get("affine");
                sd.affine = af != nullptr && af->boolean;
                for (const std::uint64_t u :
                     u64Array(jd->get("accUnits"))) {
                    sd.accUnits.push_back(static_cast<UnitId>(u));
                }
                sd.accCounts = u64Array(jd->get("accCounts"));
                const json::Value* curve = jd->get("curve");
                if (curve != nullptr) {
                    sd.curve =
                        MissCurve(u64Array(curve->get("capacities")),
                                  dArray(curve->get("misses")));
                }
                d.demands.push_back(std::move(sd));
            }
        }
        out.push_back(std::move(d));
    }
    if (out.empty()) {
        *err = "no decision records in " + path;
        return false;
    }
    return true;
}

/** Accessed bitvectors + deterministic stream order for one decision. */
struct AssignInput
{
    std::vector<std::vector<bool>> accessed;
    std::vector<StreamId> streams;
};

AssignInput
assignInput(const Decision& d)
{
    AssignInput in;
    StreamId max_sid = 0;
    std::uint32_t units = d.numUnits;
    for (const StreamDemand& sd : d.demands) {
        max_sid = std::max(max_sid, sd.sid);
        for (const UnitId u : sd.accUnits) {
            units = std::max(units, u + 1);
        }
    }
    in.accessed.assign(units, std::vector<bool>(max_sid + 1, false));
    std::set<StreamId> sids;
    for (const StreamDemand& sd : d.demands) {
        sids.insert(sd.sid);
        for (const UnitId u : sd.accUnits) {
            in.accessed[u][sd.sid] = true;
        }
    }
    in.streams.assign(sids.begin(), sids.end());
    return in;
}

/** Delta set between two decisions, from demand fingerprints. */
std::vector<StreamId>
deltaBetween(const Decision& prev, const Decision& cur)
{
    std::map<StreamId, std::uint64_t> before;
    for (const StreamDemand& d : prev.demands) {
        before[d.sid] = demandFingerprint(d);
    }
    std::set<StreamId> delta;
    std::set<StreamId> now;
    for (const StreamDemand& d : cur.demands) {
        now.insert(d.sid);
        const auto it = before.find(d.sid);
        if (it == before.end() || it->second != demandFingerprint(d)) {
            delta.insert(d.sid);
        }
    }
    for (const auto& [sid, fp] : before) {
        (void)fp;
        if (now.count(sid) == 0) {
            delta.insert(sid);
        }
    }
    return {delta.begin(), delta.end()};
}

} // namespace

int
main(int argc, char** argv)
{
    const Options opt = parseArgs(argc, argv);
    std::string path = opt.input;
    if (path.size() < 6
        || path.compare(path.size() - 6, 6, ".jsonl") != 0) {
        path += ".decisions.jsonl";
    }

    std::vector<Decision> decisions;
    std::string err;
    if (!loadDecisions(path, decisions, &err)) {
        std::fprintf(stderr, "ndpext_solver_replay: %s\n", err.c_str());
        return 2;
    }

    const SamplerAssigner assigner(opt.samplers);
    SamplerAssignment prev;
    bool have_prev = false;
    std::uint64_t cold_aug = 0;
    std::uint64_t warm_aug = 0;
    std::uint64_t seeded = 0;
    std::uint64_t warm_solves = 0;
    std::uint64_t empty_deltas = 0;
    bool ok = true;

    for (std::size_t i = 0; i < decisions.size(); ++i) {
        const Decision& d = decisions[i];
        if (d.demands.empty()) {
            continue;
        }
        const AssignInput in = assignInput(d);
        SamplerAssignStats cold_stats;
        const SamplerAssignment cold =
            assigner.assign(in.accessed, in.streams, &cold_stats);
        cold_aug += cold_stats.augmentingPaths;

        if (have_prev) {
            const std::vector<StreamId> delta =
                deltaBetween(decisions[i - 1], d);
            SamplerAssignStats warm_stats;
            const SamplerAssignment warm = assigner.assignWarm(
                in.accessed, in.streams, prev, delta, &warm_stats);
            warm_aug += warm_stats.augmentingPaths;
            seeded += warm_stats.seededPairs;
            ++warm_solves;
            if (warm.covered != cold.covered) {
                std::fprintf(stderr,
                             "PARITY FAIL decision %zu (%s, epoch %llu): "
                             "cold covers %llu, warm covers %llu\n",
                             i, d.kind.c_str(),
                             static_cast<unsigned long long>(d.epoch),
                             static_cast<unsigned long long>(cold.covered),
                             static_cast<unsigned long long>(warm.covered));
                ok = false;
            }
            if (delta.empty()) {
                ++empty_deltas;
                if (warm.perUnit != prev.perUnit) {
                    std::fprintf(stderr,
                                 "PARITY FAIL decision %zu: empty delta "
                                 "but warm assignment differs from the "
                                 "previous epoch\n",
                                 i);
                    ok = false;
                }
                if (warm_stats.augmentingPaths != 0) {
                    std::fprintf(stderr,
                                 "PARITY FAIL decision %zu: empty delta "
                                 "but %llu augmenting path(s) ran\n",
                                 i,
                                 static_cast<unsigned long long>(
                                     warm_stats.augmentingPaths));
                    ok = false;
                }
            }
            if (opt.verbose) {
                std::printf("  decision %zu: streams=%zu delta=%zu "
                            "seeded=%llu cold_aug=%llu warm_aug=%llu\n",
                            i, in.streams.size(), delta.size(),
                            static_cast<unsigned long long>(
                                warm_stats.seededPairs),
                            static_cast<unsigned long long>(
                                cold_stats.augmentingPaths),
                            static_cast<unsigned long long>(
                                warm_stats.augmentingPaths));
            }
        }
        prev = cold;
        have_prev = true;
    }

    // Optional Algorithm 1 replay: full vs deterministic budget.
    std::uint64_t full_objective = 0;
    std::uint64_t capped_objective = 0;
    std::uint64_t full_iters = 0;
    std::uint64_t capped_iters = 0;
    if (opt.budgetIters != 0) {
        std::uint32_t units = 0;
        for (const Decision& d : decisions) {
            units = std::max(units, d.numUnits);
            for (const StreamDemand& sd : d.demands) {
                for (const UnitId u : sd.accUnits) {
                    units = std::max(units, u + 1);
                }
            }
        }
        if (units == 0) {
            std::fprintf(stderr,
                         "ndpext_solver_replay: no units recorded\n");
            return 2;
        }
        const MeshTopology topo{1, 1, units, 1};
        const NocModel noc{topo, NocParams{}};
        ConfigParams params;
        params.numUnits = units;
        params.rowsPerUnit = opt.rowsPerUnit;
        params.rowBytes = opt.rowBytes;
        ConfigParams capped = params;
        capped.budgetIterations = opt.budgetIters;
        ConfigAlgorithm full_algo(params, noc);
        ConfigAlgorithm capped_algo(capped, noc);
        for (const Decision& d : decisions) {
            if (d.demands.empty()) {
                continue;
            }
            full_algo.run(d.demands);
            full_objective += full_algo.lastObjectiveBytes();
            full_iters += full_algo.lastIterations();
            capped_algo.run(d.demands);
            capped_objective += capped_algo.lastObjectiveBytes();
            capped_iters += capped_algo.lastIterations();
        }
        const double regret = full_objective == 0
            ? 0.0
            : 100.0
                * (1.0
                   - static_cast<double>(capped_objective)
                       / static_cast<double>(full_objective));
        std::printf("algorithm1 replay: fullIters=%llu cappedIters=%llu "
                    "fullObjective=%llu cappedObjective=%llu "
                    "regret=%.2f%%\n",
                    static_cast<unsigned long long>(full_iters),
                    static_cast<unsigned long long>(capped_iters),
                    static_cast<unsigned long long>(full_objective),
                    static_cast<unsigned long long>(capped_objective),
                    regret);
        if (regret > opt.maxRegretPct) {
            std::fprintf(stderr,
                         "REGRET FAIL: %.2f%% > %.2f%% allowed\n", regret,
                         opt.maxRegretPct);
            ok = false;
        }
    }

    std::printf("solver replay: %zu decision(s), %llu warm solve(s) "
                "(%llu with empty delta), seededPairs=%llu "
                "coldAugPaths=%llu warmAugPaths=%llu -- %s\n",
                decisions.size(),
                static_cast<unsigned long long>(warm_solves),
                static_cast<unsigned long long>(empty_deltas),
                static_cast<unsigned long long>(seeded),
                static_cast<unsigned long long>(cold_aug),
                static_cast<unsigned long long>(warm_aug),
                ok ? "parity OK" : "PARITY VIOLATED");
    return ok ? 0 : 1;
}
