/**
 * ndpext_report — summarize, diff, and validate telemetry output.
 *
 * Consumes the three files a `ndpext_sim --telemetry=PREFIX` run emits
 * (PREFIX.metrics.jsonl, PREFIX.trace.json, PREFIX.decisions.jsonl):
 *
 *   ndpext_report summary PREFIX
 *       Per-epoch overview (accesses, hit rate, link bandwidth), final
 *       per-stream hit rates, p50/p99 of each sampled latency stage, and
 *       every runtime decision's stream->unit share assignment.
 *
 *   ndpext_report topdown PREFIX
 *       Fig. 2(a)-style top-down CPI stack from the final metric sample:
 *       machine-wide, per stack, and per stream, plus per-stream energy
 *       attribution. Verifies that the stall buckets sum exactly to the
 *       recorded memory stall cycles (exit 1 on violation).
 *
 *   ndpext_report diff [--strict] [--tolerance=REL] PREFIX_A PREFIX_B
 *       Compare two runs: per-stream hit-rate deltas, stage-latency
 *       percentile deltas, and the decisions whose allocations differ
 *       (Algorithm 1 replay diffing without rerunning the simulator).
 *       With --strict, exit 1 when aligned decisions diverge or any
 *       headline metric's relative delta exceeds REL (default 0).
 *
 *   ndpext_report check PREFIX
 *       Validate the schema of all three files; exit 1 with a message on
 *       the first violation (the ctest schema gate). Warns (exit 0) when
 *       stage percentiles rest on too few sampled packet slices.
 *
 *   ndpext_report check --stats-json=FILE
 *       Validate a `ndpext_sim --stats-json` output instead: required
 *       headline scalars, the degraded block, and an all-numeric "stats"
 *       counter object (the CI backend-matrix gate).
 *
 *   ndpext_report slo PREFIX
 *   ndpext_report slo --stats-json=FILE
 *       Multi-tenant serving view (runs produced with --tenant): each
 *       tenant's request-latency p50/p99 against its SLO target,
 *       attainment (1 - violations/retired), and -- from telemetry --
 *       the per-epoch attainment trend (`n/a` for epochs where a tenant
 *       retired nothing, e.g. before arrival or after departure). Exit 1
 *       when the run carried no serving tenants.
 *
 *   ndpext_report trace PREFIX
 *       Tail-latency forensics for runs produced with --trace-requests:
 *       per-request causal span breakdown (queue wait -> compute -> L1
 *       -> NoC -> CXL -> ext-memory ...) of every retained exemplar,
 *       verified cycle-exact against the recorded request latency, plus
 *       a per-tenant blame summary naming the stage that dominates the
 *       slowest (p99) exemplars. Exit 1 when a stage sum disagrees with
 *       its request latency or the run retained no exemplars.
 *
 *   ndpext_report watch PREFIX
 *       Follow a live (or finished) run without perturbing it: reads
 *       only the advisory PREFIX.heartbeat.json the simulator atomically
 *       rewrites at epoch barriers, plus any flushed PREFIX.metrics.part
 *       side file. Prints epoch/cycle progress, wall-clock rate and ETA,
 *       and each tenant's cumulative SLO attainment / violation burn
 *       rate. Unlike every other command, watch accepts an .inprogress
 *       marker -- an in-progress run is exactly what it is for.
 *
 * Exit status: 0 = ok, 1 = bad telemetry content, 2 = usage error.
 */

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/tiny_json.h"

using namespace ndpext;

namespace {

constexpr const char* kUsage =
    "usage: ndpext_report <command> [options] <prefix> [<prefix2>]\n"
    "  summary PREFIX       per-epoch metrics, per-stream hit rates,\n"
    "                       stage latency percentiles, decisions\n"
    "  topdown PREFIX       top-down CPI stack (machine / per stack /\n"
    "                       per stream) + per-stream energy attribution\n"
    "  diff [--strict] [--tolerance=REL] PREFIX PREFIX2\n"
    "                       compare two telemetry runs; --strict exits 1\n"
    "                       on decision divergence or metric deltas\n"
    "                       beyond REL (default 0)\n"
    "  check PREFIX         validate the telemetry schema (exit 1 on\n"
    "                       violation)\n"
    "  check --stats-json=FILE\n"
    "                       validate a --stats-json output instead\n"
    "  slo PREFIX           per-tenant serving view: request-latency\n"
    "                       p50/p99 against each SLO target, attainment,\n"
    "                       and the per-epoch attainment trend\n"
    "  slo --stats-json=FILE\n"
    "                       the same table from a --stats-json output\n"
    "  trace PREFIX         per-request span breakdown of every retained\n"
    "                       tail exemplar (--trace-requests runs) and a\n"
    "                       per-tenant p99 blame summary\n"
    "  watch PREFIX         live view of a running simulation from its\n"
    "                       heartbeat file: progress, ETA, SLO burn rate\n";

/**
 * Percentiles from fewer samples than this are statistically garbage
 * (a p99 needs ~100 points to even be defined by rank). summary/topdown
 * warn; check flags the same condition without failing, so low
 * --telemetry-sample smoke runs stay usable as schema gates.
 */
constexpr std::size_t kMinStageSamples = 100;

[[noreturn]] void
usageError(const std::string& message)
{
    std::fprintf(stderr, "ndpext_report: %s\n%s", message.c_str(), kUsage);
    std::exit(2);
}

/** Content failure: print and exit 1 (distinct from usage errors). */
[[noreturn]] void
fail(const std::string& message)
{
    std::fprintf(stderr, "ndpext_report: %s\n", message.c_str());
    std::exit(1);
}

bool
readFile(const std::string& path, std::string& out, std::string* error)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        if (error != nullptr) {
            *error = "cannot read '" + path + "'";
        }
        return false;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    out = ss.str();
    return true;
}

/** One parsed telemetry run. */
struct Run
{
    std::string prefix;
    std::vector<json::ValuePtr> epochs;    ///< metrics.jsonl lines
    std::vector<json::ValuePtr> decisions; ///< decisions.jsonl lines
    json::ValuePtr trace;                  ///< trace.json document
    /** exemplars.jsonl lines; empty unless run with --trace-requests. */
    std::vector<json::ValuePtr> exemplars;
};

Run
loadRun(const std::string& prefix)
{
    // The simulator drops `<prefix>.inprogress` before a run and only
    // removes it after every artifact is written, so its presence means
    // the producing run crashed, was killed, or is still running -- the
    // telemetry here is stale or incomplete.
    if (std::ifstream(prefix + ".inprogress").good()) {
        fail(prefix
             + ".inprogress exists: the producing run did not finish "
               "(crashed, killed, or still running). Re-run it, resume "
               "it with --resume from its newest checkpoint, or drive "
               "the retry with ndpext_supervise; delete the marker if "
               "it is stale.");
    }
    Run run;
    run.prefix = prefix;
    std::string text;
    std::string error;
    if (!readFile(prefix + ".metrics.jsonl", text, &error)) {
        fail(error);
    }
    if (!json::parseLines(text, run.epochs, &error)) {
        fail(prefix + ".metrics.jsonl: " + error);
    }
    if (!readFile(prefix + ".decisions.jsonl", text, &error)) {
        fail(error);
    }
    if (!json::parseLines(text, run.decisions, &error)) {
        fail(prefix + ".decisions.jsonl: " + error);
    }
    if (!readFile(prefix + ".trace.json", text, &error)) {
        fail(error);
    }
    run.trace = json::parse(text, &error);
    if (run.trace == nullptr) {
        fail(prefix + ".trace.json: " + error);
    }
    // Optional fourth artifact: only --trace-requests runs emit it.
    if (readFile(prefix + ".exemplars.jsonl", text, nullptr)
        && !json::parseLines(text, run.exemplars, &error)) {
        fail(prefix + ".exemplars.jsonl: " + error);
    }
    return run;
}

/** metrics["name"] of one epoch line (0.0 when absent). */
double
metric(const json::Value& epoch_line, const std::string& name)
{
    const json::Value* metrics = epoch_line.get("metrics");
    return metrics == nullptr ? 0.0 : metrics->num(name);
}

/** Final (cumulative) value of a metric: the last epoch line's entry. */
double
finalMetric(const Run& run, const std::string& name)
{
    return run.epochs.empty() ? 0.0 : metric(*run.epochs.back(), name);
}

/** Nearest-rank percentile of an unsorted sample set (0 when empty). */
double
percentile(std::vector<double> v, double q)
{
    if (v.empty()) {
        return 0.0;
    }
    std::sort(v.begin(), v.end());
    const double pos = q * static_cast<double>(v.size() - 1);
    const std::size_t idx =
        static_cast<std::size_t>(std::llround(std::floor(pos + 0.5)));
    return v[std::min(idx, v.size() - 1)];
}

/** Per-stage duration samples from the trace's packet slices. */
std::map<std::string, std::vector<double>>
stageSamples(const Run& run)
{
    std::map<std::string, std::vector<double>> stages;
    const json::Value* events = run.trace->get("traceEvents");
    if (events == nullptr) {
        return stages;
    }
    for (const auto& ev : events->array) {
        if (ev->str("ph") != "X" || ev->str("cat") != "packet") {
            continue;
        }
        const std::string name = ev->str("name");
        // Parent spans are "pkt"/"pkt s<sid>" (total); children are the
        // stage names.
        const std::string key =
            name.rfind("pkt", 0) == 0 ? std::string("total") : name;
        stages[key].push_back(ev->num("dur"));
    }
    return stages;
}

/** Final per-stream hits/misses keyed by sid. */
std::map<std::uint64_t, std::pair<double, double>>
streamHitMiss(const Run& run)
{
    std::map<std::uint64_t, std::pair<double, double>> per_stream;
    if (run.epochs.empty()) {
        return per_stream;
    }
    const json::Value* metrics = run.epochs.back()->get("metrics");
    if (metrics == nullptr) {
        return per_stream;
    }
    const std::string prefix = "cache.stream.";
    for (const auto& [name, value] : metrics->object) {
        if (name.rfind(prefix, 0) != 0 || !value->isNumber()) {
            continue;
        }
        const std::string rest = name.substr(prefix.size());
        const auto dot = rest.find('.');
        if (dot == std::string::npos) {
            continue;
        }
        const std::uint64_t sid = std::strtoull(rest.c_str(), nullptr, 10);
        const std::string field = rest.substr(dot + 1);
        if (field == "hits") {
            per_stream[sid].first = value->number;
        } else if (field == "misses") {
            per_stream[sid].second = value->number;
        }
    }
    return per_stream;
}

/** "sid -> unit:rows unit:rows ..." lines for one decision's allocs. */
void
printAssignments(const json::Value& decision)
{
    const json::Value* allocs = decision.get("allocs");
    if (allocs == nullptr) {
        return;
    }
    for (const auto& alloc : allocs->array) {
        std::printf("    stream %-4llu groups=%-3llu units:",
                    static_cast<unsigned long long>(alloc->num("sid")),
                    static_cast<unsigned long long>(alloc->num("numGroups")));
        const json::Value* shares = alloc->get("shareRows");
        if (shares != nullptr) {
            for (std::size_t u = 0; u < shares->array.size(); ++u) {
                const double rows = shares->array[u]->number;
                if (rows > 0) {
                    std::printf(" %zu:%llu", u,
                                static_cast<unsigned long long>(rows));
                }
            }
        }
        std::printf("\n");
    }
}

/** Canonical "sid:rows,rows,..." signature of a decision's allocation. */
std::string
allocSignature(const json::Value& decision)
{
    std::string sig;
    const json::Value* allocs = decision.get("allocs");
    if (allocs == nullptr) {
        return sig;
    }
    for (const auto& alloc : allocs->array) {
        sig += std::to_string(
            static_cast<std::uint64_t>(alloc->num("sid")));
        sig += ':';
        const json::Value* shares = alloc->get("shareRows");
        if (shares != nullptr) {
            for (const auto& v : shares->array) {
                sig += std::to_string(
                    static_cast<std::uint64_t>(v->number));
                sig += ',';
            }
        }
        sig += ';';
    }
    return sig;
}

/** Warn about stages whose percentiles rest on < kMinStageSamples
 *  sampled slices. Returns the number of warnings printed. */
std::size_t
warnLowSamples(const std::map<std::string, std::vector<double>>& stages)
{
    std::size_t warned = 0;
    for (const auto& [stage, samples] : stages) {
        if (samples.size() < kMinStageSamples) {
            std::fprintf(stderr,
                         "ndpext_report: warning: stage '%s' percentiles "
                         "computed from only %zu sampled slice(s) (< %zu); "
                         "lower --telemetry-sample or run longer for "
                         "trustworthy p99s\n",
                         stage.c_str(), samples.size(), kMinStageSamples);
            ++warned;
        }
    }
    return warned;
}

void
cmdSummary(const Run& run)
{
    std::printf("telemetry summary: %s\n", run.prefix.c_str());

    // --- per-epoch table ---
    std::printf("\nepochs (%zu):\n", run.epochs.size());
    std::printf("  %-6s %-12s %-10s %-8s %-12s %-12s %-12s\n", "epoch",
                "cycles", "accesses", "hitrate", "noc B/cyc",
                "ext B/cyc", "pkt p99");
    double prev_cycles = 0.0;
    double prev_noc = 0.0;
    double prev_ext = 0.0;
    double prev_hits = 0.0;
    double prev_misses = 0.0;
    for (const auto& line : run.epochs) {
        const double cycles = line->num("cycles");
        const double hits = metric(*line, "cache.hits");
        const double misses = metric(*line, "cache.misses");
        const double noc_bytes = metric(*line, "noc.intraHopBytes")
            + metric(*line, "noc.interHopBytes");
        const double ext_bytes = metric(*line, "ext.linkBytes");
        const double dc = std::max(1.0, cycles - prev_cycles);
        const double dh = hits - prev_hits;
        const double dm = misses - prev_misses;
        double p99 = 0.0;
        const json::Value* hists = line->get("histograms");
        if (hists != nullptr) {
            const json::Value* lat = hists->get("telemetry.packetLatency");
            if (lat != nullptr) {
                p99 = lat->num("p99");
            }
        }
        std::printf("  %-6llu %-12.0f %-10.0f %-8.3f %-12.2f %-12.2f "
                    "%-12.0f\n",
                    static_cast<unsigned long long>(line->num("epoch")),
                    cycles, dh + dm,
                    dh + dm == 0.0 ? 0.0 : dh / (dh + dm),
                    (noc_bytes - prev_noc) / dc,
                    (ext_bytes - prev_ext) / dc, p99);
        prev_cycles = cycles;
        prev_noc = noc_bytes;
        prev_ext = ext_bytes;
        prev_hits = hits;
        prev_misses = misses;
    }

    // --- incremental solver (solver.* series; zero when disabled) ---
    const double solver_decisions = finalMetric(run, "solver.decisions");
    if (solver_decisions > 0.0) {
        const double iters = finalMetric(run, "solver.iterations");
        const double budget_hits = finalMetric(run, "solver.budgetHits");
        const double reused = finalMetric(run, "solver.warmStartReused");
        const double delta = finalMetric(run, "solver.deltaStreams");
        const double covered =
            finalMetric(run, "runtime.streamsCovered");
        std::printf("\nplacement solver:\n");
        std::printf("  decisions          %.0f\n", solver_decisions);
        std::printf("  iterations         %.0f (%.1f per decision)\n",
                    iters, iters / solver_decisions);
        std::printf("  budget hits        %.0f (%.1f%% of decisions)\n",
                    budget_hits,
                    100.0 * budget_hits / solver_decisions);
        if (covered > 0.0) {
            std::printf(
                "  warm-start reused  %.0f pair(s) (%.1f%% hit rate)\n",
                reused, 100.0 * reused / covered);
        } else {
            std::printf("  warm-start reused  %.0f pair(s)\n", reused);
        }
        std::printf("  delta streams      %.0f\n", delta);
    }

    // --- per-stream hit rate ---
    const auto per_stream = streamHitMiss(run);
    if (!per_stream.empty()) {
        std::printf("\nper-stream hit rate (final):\n");
        for (const auto& [sid, hm] : per_stream) {
            const double total = hm.first + hm.second;
            std::printf("  stream %-4llu accesses %-10.0f hitrate %.3f\n",
                        static_cast<unsigned long long>(sid), total,
                        total == 0.0 ? 0.0 : hm.first / total);
        }
    }

    // --- stage latency percentiles from sampled packets ---
    const auto stages = stageSamples(run);
    if (!stages.empty()) {
        std::printf("\nsampled packet latency by stage (cycles):\n");
        std::printf("  %-10s %-8s %-10s %-10s %-10s\n", "stage", "count",
                    "p50", "p99", "max");
        for (const auto& [stage, samples] : stages) {
            std::printf("  %-10s %-8zu %-10.0f %-10.0f %-10.0f\n",
                        stage.c_str(), samples.size(),
                        percentile(samples, 0.5), percentile(samples, 0.99),
                        samples.empty()
                            ? 0.0
                            : *std::max_element(samples.begin(),
                                                samples.end()));
        }
        warnLowSamples(stages);
    }

    // --- decisions ---
    std::printf("\nruntime decisions (%zu):\n", run.decisions.size());
    for (const auto& d : run.decisions) {
        std::printf(
            "  [%s] epoch %llu @ %llu cycles: %zu stream(s), "
            "iterations=%llu extends=%llu merges=%llu%s\n",
            d->str("kind").c_str(),
            static_cast<unsigned long long>(d->num("epoch")),
            static_cast<unsigned long long>(d->num("cycles")),
            d->get("allocs") == nullptr ? 0 : d->get("allocs")->array.size(),
            static_cast<unsigned long long>(d->num("iterations")),
            static_cast<unsigned long long>(d->num("extends")),
            static_cast<unsigned long long>(d->num("merges")),
            d->get("applied") != nullptr && !d->get("applied")->boolean
                ? " (skipped by stability guard)"
                : "");
        printAssignments(*d);
    }
}

/** The memory-stall buckets of the top-down stack, in print order. */
constexpr const char* kStallBuckets[] = {"metadata",  "icnIntra",
                                         "icnInter",  "dramCache",
                                         "extMem",    "mshrQueue"};
constexpr std::size_t kNumStallBuckets = 6;

/** One CPI stack read from a metric namespace (cores / stack.<s>). */
struct CpiStack
{
    bool present = false;
    double compute = 0.0;
    double l1 = 0.0;
    double memStall = 0.0;
    double buckets[kNumStallBuckets] = {};

    double total() const { return compute + l1 + memStall; }
    double
    bucketSum() const
    {
        double sum = 0.0;
        for (const double b : buckets) {
            sum += b;
        }
        return sum;
    }
};

CpiStack
readCpiStack(const json::Value& metrics, const std::string& prefix)
{
    CpiStack s;
    const json::Value* mem = metrics.get(prefix + ".memStallCycles");
    if (mem == nullptr || !mem->isNumber()) {
        return s;
    }
    s.present = true;
    s.compute = metrics.num(prefix + ".computeCycles");
    s.l1 = metrics.num(prefix + ".l1Cycles");
    s.memStall = mem->number;
    for (std::size_t i = 0; i < kNumStallBuckets; ++i) {
        s.buckets[i] =
            metrics.num(prefix + ".stall." + kStallBuckets[i]);
    }
    return s;
}

void
printCpiRow(const char* label, const CpiStack& s)
{
    const double total = std::max(1.0, s.total());
    std::printf("  %-10s %-14.0f %5.1f%% %5.1f%%", label, s.total(),
                100.0 * s.compute / total, 100.0 * s.l1 / total);
    for (std::size_t i = 0; i < kNumStallBuckets; ++i) {
        std::printf(" %8.1f%%", 100.0 * s.buckets[i] / total);
    }
    std::printf("\n");
}

void
cmdTopdown(const Run& run)
{
    if (run.epochs.empty()) {
        fail(run.prefix + ".metrics.jsonl: no epoch samples");
    }
    const json::Value* metrics = run.epochs.back()->get("metrics");
    if (metrics == nullptr || !metrics->isObject()) {
        fail(run.prefix + ".metrics.jsonl: missing 'metrics' object");
    }

    const CpiStack machine = readCpiStack(*metrics, "cores");
    if (!machine.present || metrics->get("cores.stall.metadata") == nullptr) {
        fail(run.prefix + ": no CPI-stack series (cores.stall.*); "
             "re-run the simulator with --telemetry");
    }

    std::printf("top-down CPI stack: %s (final sample, cumulative "
                "cycles)\n\n",
                run.prefix.c_str());
    std::printf("  %-10s %-14s %6s %6s", "scope", "cycles", "cmp", "l1");
    for (const char* b : kStallBuckets) {
        std::printf(" %9s", b);
    }
    std::printf("\n");
    printCpiRow("machine", machine);

    // --- per-stack stacks (registered as stack.<s>.*) ---
    for (std::size_t s = 0;; ++s) {
        const std::string prefix = "stack." + std::to_string(s);
        const CpiStack stack = readCpiStack(*metrics, prefix);
        if (!stack.present) {
            break;
        }
        printCpiRow(prefix.c_str(), stack);
        if (stack.bucketSum() != stack.memStall) {
            fail(prefix + ": stall buckets sum to "
                 + std::to_string(stack.bucketSum()) + " but "
                 + prefix + ".memStallCycles = "
                 + std::to_string(stack.memStall));
        }
    }

    // --- the tentpole invariant: buckets partition the stall cycles ---
    if (machine.bucketSum() != machine.memStall) {
        fail("invariant violation: stall buckets sum to "
             + std::to_string(machine.bucketSum())
             + " but cores.memStallCycles = "
             + std::to_string(machine.memStall));
    }
    std::printf("\ninvariant ok: stall buckets sum exactly to "
                "memStallCycles (%.0f)\n",
                machine.memStall);

    // --- per-stream cycle + energy attribution (stream.<sid>.*) ---
    std::vector<std::string> sids;
    const std::string sprefix = "stream.";
    for (const auto& [name, value] : metrics->object) {
        (void)value;
        if (name.rfind(sprefix, 0) != 0) {
            continue;
        }
        const std::string rest = name.substr(sprefix.size());
        const auto dot = rest.find('.');
        if (dot == std::string::npos
            || rest.compare(dot, std::string::npos, ".stallCycles") != 0) {
            continue;
        }
        sids.push_back(rest.substr(0, dot));
    }
    std::sort(sids.begin(), sids.end(), [](const std::string& a,
                                           const std::string& b) {
        const bool na = a != "none";
        const bool nb = b != "none";
        if (na != nb) {
            return na; // "none" sorts last
        }
        if (a.size() != b.size()) {
            return a.size() < b.size();
        }
        return a < b;
    });

    if (!sids.empty()) {
        std::printf("\nper-stream attribution (cycles):\n");
        std::printf("  %-8s %-12s %-10s %-10s %-10s %-10s %-10s\n",
                    "stream", "stall", "metadata", "icnIntra", "icnInter",
                    "dramCache", "extMem");
        double stall_sum = 0.0;
        for (const std::string& sid : sids) {
            const std::string base = sprefix + sid;
            const double stall = metrics->num(base + ".stallCycles");
            stall_sum += stall;
            std::printf(
                "  %-8s %-12.0f %-10.0f %-10.0f %-10.0f %-10.0f %-10.0f\n",
                sid.c_str(), stall,
                metrics->num(base + ".serviceCycles.metadata"),
                metrics->num(base + ".serviceCycles.icnIntra"),
                metrics->num(base + ".serviceCycles.icnInter"),
                metrics->num(base + ".serviceCycles.dramCache"),
                metrics->num(base + ".serviceCycles.extMem"));
        }
        if (stall_sum != machine.memStall) {
            fail("invariant violation: per-stream stall cycles sum to "
                 + std::to_string(stall_sum)
                 + " but cores.memStallCycles = "
                 + std::to_string(machine.memStall));
        }

        std::printf("\nper-stream attribution (energy, nJ):\n");
        std::printf("  %-8s %-12s %-12s %-12s %-12s %-12s\n", "stream",
                    "icn", "cxlLink", "extDram", "dramCache", "sram");
        for (const std::string& sid : sids) {
            const std::string base = sprefix + sid + ".energyNj";
            std::printf(
                "  %-8s %-12.1f %-12.1f %-12.1f %-12.1f %-12.1f\n",
                sid.c_str(), metrics->num(base + ".icn"),
                metrics->num(base + ".cxlLink"),
                metrics->num(base + ".extDram"),
                metrics->num(base + ".dramCache"),
                metrics->num(base + ".sram"));
        }
        std::printf("\nper-stream stall cycles sum exactly to "
                    "memStallCycles (%.0f)\n",
                    stall_sum);
    }

    warnLowSamples(stageSamples(run));
}

/**
 * Compare two runs; returns the number of strict-mode violations
 * (diverged aligned decisions count as one violation, plus one per
 * headline metric whose relative delta exceeds `tolerance`). The caller
 * only acts on the return value when --strict was given.
 */
std::size_t
cmdDiff(const Run& a, const Run& b, double tolerance)
{
    std::size_t violations = 0;
    std::printf("telemetry diff: %s vs %s\n", a.prefix.c_str(),
                b.prefix.c_str());

    // --- headline metric deltas ---
    const char* headline[] = {"cache.hits", "cache.misses",
                              "noc.interHopBytes", "ext.linkBytes",
                              "runtime.reconfigurations"};
    std::printf("\nfinal metrics:\n");
    std::printf("  %-26s %-14s %-14s %-14s\n", "metric", "a", "b", "delta");
    for (const char* name : headline) {
        const double va = finalMetric(a, name);
        const double vb = finalMetric(b, name);
        const double rel =
            va == 0.0 ? (vb == 0.0 ? 0.0 : 1.0)
                      : std::abs(vb - va) / std::abs(va);
        const bool over = rel > tolerance;
        if (over) {
            ++violations;
        }
        std::printf("  %-26s %-14.0f %-14.0f %-+14.0f%s\n", name, va, vb,
                    vb - va, over ? "  <-- exceeds tolerance" : "");
    }

    // --- per-stream hit-rate deltas ---
    const auto sa = streamHitMiss(a);
    const auto sb = streamHitMiss(b);
    std::printf("\nper-stream hit rate:\n");
    std::printf("  %-8s %-10s %-10s %-10s\n", "stream", "a", "b", "delta");
    for (const auto& [sid, hm] : sa) {
        const auto it = sb.find(sid);
        const double ta = hm.first + hm.second;
        const double ra = ta == 0.0 ? 0.0 : hm.first / ta;
        double rb = 0.0;
        if (it != sb.end()) {
            const double tb = it->second.first + it->second.second;
            rb = tb == 0.0 ? 0.0 : it->second.first / tb;
        }
        std::printf("  %-8llu %-10.3f %-10.3f %-+10.3f\n",
                    static_cast<unsigned long long>(sid), ra, rb, rb - ra);
    }
    for (const auto& [sid, hm] : sb) {
        if (sa.find(sid) == sa.end()) {
            const double tb = hm.first + hm.second;
            std::printf("  %-8llu %-10s %-10.3f (only in b)\n",
                        static_cast<unsigned long long>(sid), "-",
                        tb == 0.0 ? 0.0 : hm.first / tb);
        }
    }

    // --- stage latency percentile deltas ---
    const auto stages_a = stageSamples(a);
    const auto stages_b = stageSamples(b);
    std::printf("\nsampled stage latency p50/p99 (cycles):\n");
    std::printf("  %-10s %-16s %-16s\n", "stage", "a (p50/p99)",
                "b (p50/p99)");
    std::vector<std::string> names;
    for (const auto& [k, v] : stages_a) {
        names.push_back(k);
    }
    for (const auto& [k, v] : stages_b) {
        if (stages_a.find(k) == stages_a.end()) {
            names.push_back(k);
        }
    }
    for (const auto& name : names) {
        const auto ia = stages_a.find(name);
        const auto ib = stages_b.find(name);
        char la[32] = "-";
        char lb[32] = "-";
        if (ia != stages_a.end()) {
            std::snprintf(la, sizeof(la), "%.0f/%.0f",
                          percentile(ia->second, 0.5),
                          percentile(ia->second, 0.99));
        }
        if (ib != stages_b.end()) {
            std::snprintf(lb, sizeof(lb), "%.0f/%.0f",
                          percentile(ib->second, 0.5),
                          percentile(ib->second, 0.99));
        }
        std::printf("  %-10s %-16s %-16s\n", name.c_str(), la, lb);
    }

    // --- decision divergence: first epoch whose allocation differs ---
    std::printf("\ndecisions: %zu in a, %zu in b\n", a.decisions.size(),
                b.decisions.size());
    const std::size_t common =
        std::min(a.decisions.size(), b.decisions.size());
    std::size_t diverged = 0;
    for (std::size_t i = 0; i < common; ++i) {
        if (allocSignature(*a.decisions[i])
            != allocSignature(*b.decisions[i])) {
            if (diverged == 0) {
                std::printf("first divergence at decision %zu:\n", i);
                std::printf("  a [%s epoch %llu]:\n",
                            a.decisions[i]->str("kind").c_str(),
                            static_cast<unsigned long long>(
                                a.decisions[i]->num("epoch")));
                printAssignments(*a.decisions[i]);
                std::printf("  b [%s epoch %llu]:\n",
                            b.decisions[i]->str("kind").c_str(),
                            static_cast<unsigned long long>(
                                b.decisions[i]->num("epoch")));
                printAssignments(*b.decisions[i]);
            }
            ++diverged;
        }
    }
    std::printf("%zu of %zu aligned decisions differ\n", diverged, common);
    if (diverged > 0) {
        ++violations;
    }
    return violations;
}

/** Schema checks (the ctest gate). Every failure names file and line. */
void
checkMetricsSchema(const Run& run)
{
    const char* file = ".metrics.jsonl";
    if (run.epochs.empty()) {
        fail(run.prefix + file + ": no epoch samples");
    }
    double prev_epoch = -1.0;
    for (std::size_t i = 0; i < run.epochs.size(); ++i) {
        const json::Value& line = *run.epochs[i];
        const std::string at =
            run.prefix + file + " line " + std::to_string(i + 1);
        if (!line.isObject()) {
            fail(at + ": not an object");
        }
        for (const char* key : {"epoch", "cycles"}) {
            const json::Value* v = line.get(key);
            if (v == nullptr || !v->isNumber()) {
                fail(at + ": missing numeric '" + key + "'");
            }
        }
        if (line.num("epoch") <= prev_epoch) {
            fail(at + ": epoch numbers must increase");
        }
        prev_epoch = line.num("epoch");
        const json::Value* metrics = line.get("metrics");
        if (metrics == nullptr || !metrics->isObject()) {
            fail(at + ": missing 'metrics' object");
        }
        for (const auto& [name, value] : metrics->object) {
            if (!value->isNumber()) {
                fail(at + ": metric '" + name + "' is not a number");
            }
        }
        const json::Value* hists = line.get("histograms");
        if (hists != nullptr) {
            for (const auto& [name, h] : hists->object) {
                for (const char* key :
                     {"count", "mean", "p50", "p99", "max"}) {
                    const json::Value* v = h->get(key);
                    if (v == nullptr || !v->isNumber()) {
                        fail(at + ": histogram '" + name
                             + "' missing numeric '" + key + "'");
                    }
                }
            }
        }
    }
}

void
checkDecisionsSchema(const Run& run)
{
    const char* file = ".decisions.jsonl";
    for (std::size_t i = 0; i < run.decisions.size(); ++i) {
        const json::Value& d = *run.decisions[i];
        const std::string at =
            run.prefix + file + " line " + std::to_string(i + 1);
        const std::string kind = d.str("kind");
        if (kind != "initial" && kind != "epoch" && kind != "emergency") {
            fail(at + ": bad kind '" + kind + "'");
        }
        for (const char* key :
             {"epoch", "cycles", "iterations", "extends", "merges"}) {
            const json::Value* v = d.get(key);
            if (v == nullptr || !v->isNumber()) {
                fail(at + ": missing numeric '" + key + "'");
            }
        }
        const json::Value* applied = d.get("applied");
        if (applied == nullptr || !applied->isBool()) {
            fail(at + ": missing boolean 'applied'");
        }
        for (const char* key :
             {"demands", "samplerAssignment", "uncovered", "allocs"}) {
            const json::Value* v = d.get(key);
            if (v == nullptr || !v->isArray()) {
                fail(at + ": missing array '" + key + "'");
            }
        }
        for (const auto& demand : d.get("demands")->array) {
            const json::Value* curve = demand->get("curve");
            if (curve == nullptr || curve->get("capacities") == nullptr
                || curve->get("misses") == nullptr) {
                fail(at + ": demand without a miss curve");
            }
            if (curve->get("capacities")->array.size()
                != curve->get("misses")->array.size()) {
                fail(at + ": curve capacities/misses length mismatch");
            }
        }
        for (const auto& alloc : d.get("allocs")->array) {
            if (alloc->get("sid") == nullptr
                || alloc->get("shareRows") == nullptr
                || !alloc->get("shareRows")->isArray()) {
                fail(at + ": alloc without sid/shareRows");
            }
        }
    }
}

void
checkTraceSchema(const Run& run)
{
    const std::string at = run.prefix + ".trace.json";
    if (!run.trace->isObject()) {
        fail(at + ": not an object");
    }
    const json::Value* events = run.trace->get("traceEvents");
    if (events == nullptr || !events->isArray()) {
        fail(at + ": missing 'traceEvents' array");
    }
    if (events->array.empty()) {
        fail(at + ": empty trace");
    }
    // Flow events (ph s/t/f) must pair up: every flow id needs exactly
    // one start and one end -- an orphan means a request span tree was
    // emitted half-linked (e.g. a tenant departed mid-epoch and its
    // exemplar was dropped on the floor).
    std::map<std::uint64_t, std::pair<std::uint64_t, std::uint64_t>> flows;
    for (std::size_t i = 0; i < events->array.size(); ++i) {
        const json::Value& ev = *events->array[i];
        const std::string evat = at + " event " + std::to_string(i);
        const std::string ph = ev.str("ph");
        if (ph != "X" && ph != "i" && ph != "C" && ph != "M" && ph != "s"
            && ph != "t" && ph != "f") {
            fail(evat + ": bad ph '" + ph + "'");
        }
        for (const char* key : {"pid", "tid", "ts"}) {
            const json::Value* v = ev.get(key);
            if (v == nullptr || !v->isNumber()) {
                fail(evat + ": missing numeric '" + key + "'");
            }
        }
        if (ev.get("name") == nullptr) {
            fail(evat + ": missing 'name'");
        }
        if (ph == "X" && ev.get("dur") == nullptr) {
            fail(evat + ": complete span without 'dur'");
        }
        if (ph == "s" || ph == "t" || ph == "f") {
            const json::Value* id = ev.get("id");
            if (id == nullptr || !id->isNumber()) {
                fail(evat + ": flow event without numeric 'id'");
            }
            const std::uint64_t fid =
                static_cast<std::uint64_t>(id->number);
            if (ph == "s") {
                ++flows[fid].first;
            } else if (ph == "f") {
                ++flows[fid].second;
            } else if (flows.find(fid) == flows.end()) {
                fail(evat + ": flow step for id "
                     + std::to_string(fid) + " before its start");
            }
        }
    }
    for (const auto& [fid, counts] : flows) {
        if (counts.first != 1 || counts.second != 1) {
            fail(at + ": orphan flow id " + std::to_string(fid) + " ("
                 + std::to_string(counts.first) + " start(s), "
                 + std::to_string(counts.second) + " end(s))");
        }
    }
}

/** The nine exemplar stage names, in causal order. */
constexpr const char* kExemplarStages[] = {
    "queueWait", "compute",   "l1",     "metadata", "icnIntra",
    "icnInter",  "dramCache", "extMem", "mshrQueue"};

/**
 * Validate PREFIX.exemplars.jsonl: field presence/types, enum values,
 * and the load-bearing invariant that each exemplar's stage cycles sum
 * exactly to its end-to-end request latency (no unattributed cycles).
 */
void
checkExemplarSchema(const Run& run)
{
    const std::string at = run.prefix + ".exemplars.jsonl";
    for (std::size_t i = 0; i < run.exemplars.size(); ++i) {
        const json::Value& ex = *run.exemplars[i];
        const std::string exat = at + " line " + std::to_string(i + 1);
        if (!ex.isObject()) {
            fail(exat + ": not an object");
        }
        for (const char* key : {"tenant", "qos", "kind"}) {
            const json::Value* v = ex.get(key);
            if (v == nullptr || !v->isString() || v->string.empty()) {
                fail(exat + ": missing non-empty string '" + key + "'");
            }
        }
        const std::string qos = ex.str("qos");
        if (qos != "reserved" && qos != "best-effort") {
            fail(exat + ": bad qos '" + qos + "'");
        }
        const std::string kind = ex.str("kind");
        if (kind != "slow" && kind != "uniform") {
            fail(exat + ": bad kind '" + kind + "'");
        }
        for (const char* key : {"epoch", "core", "flow", "arrival",
                                "start", "done", "latency", "sloCycles",
                                "violation"}) {
            const json::Value* v = ex.get(key);
            if (v == nullptr || !v->isNumber()) {
                fail(exat + ": missing numeric '" + key + "'");
            }
        }
        const json::Value* stages = ex.get("stages");
        if (stages == nullptr || !stages->isObject()) {
            fail(exat + ": missing 'stages' object");
        }
        double sum = 0.0;
        for (const char* stage : kExemplarStages) {
            const json::Value* v = stages->get(stage);
            if (v == nullptr || !v->isNumber()) {
                fail(exat + ": missing numeric stage '"
                     + std::string(stage) + "'");
            }
            sum += v->number;
        }
        if (ex.num("done") - ex.num("arrival") != ex.num("latency")) {
            fail(exat + ": done - arrival != latency");
        }
        if (sum != ex.num("latency")) {
            fail(exat + ": stage sum " + std::to_string(sum)
                 + " != request latency "
                 + std::to_string(ex.num("latency"))
                 + " (unattributed cycles)");
        }
    }
}

/**
 * Schema-check one `ndpext_sim --stats-json` output file. Every backend
 * and policy emits the same headline scalars; the "stats" object is
 * free-form (backends add their own counters) but must be all-numeric.
 */
void
cmdCheckStatsJson(const std::string& path)
{
    // Same crash-marker contract as telemetry prefixes: the simulator
    // leaves `FILE.inprogress` behind when it dies mid-run.
    if (std::ifstream(path + ".inprogress").good()) {
        fail(path + ".inprogress exists: the producing run did not "
                    "finish; its stats describe an unfinished run");
    }
    std::string text;
    std::string error;
    if (!readFile(path, text, &error)) {
        fail(error);
    }
    const json::ValuePtr doc = json::parse(text, &error);
    if (doc == nullptr) {
        fail(path + ": " + error);
    }
    if (!doc->isObject()) {
        fail(path + ": not a JSON object");
    }
    for (const char* key : {"workload", "policy"}) {
        const json::Value* v = doc->get(key);
        if (v == nullptr || !v->isString() || v->string.empty()) {
            fail(path + ": missing non-empty string '" + key + "'");
        }
    }
    for (const char* key :
         {"cycles", "accesses", "l1Hits", "missRate",
          "avgMemLatencyCycles", "energyNj", "reconfigurations",
          "engineWallMicros", "engineAccessesPerSec", "writeExceptions"}) {
        const json::Value* v = doc->get(key);
        if (v == nullptr || !v->isNumber()) {
            fail(path + ": missing numeric '" + key + "'");
        }
    }
    if (doc->num("cycles") <= 0.0) {
        fail(path + ": cycles must be positive (did the run execute?)");
    }
    const json::Value* degraded = doc->get("degraded");
    if (degraded == nullptr || !degraded->isObject()) {
        fail(path + ": missing 'degraded' object");
    }
    for (const auto& [name, value] : degraded->object) {
        if (!value->isNumber()) {
            fail(path + ": degraded field '" + name
                 + "' is not a number");
        }
    }
    const json::Value* stats = doc->get("stats");
    if (stats == nullptr || !stats->isObject()) {
        fail(path + ": missing 'stats' object");
    }
    if (stats->object.empty()) {
        fail(path + ": empty 'stats' object");
    }
    for (const auto& [name, value] : stats->object) {
        if (!value->isNumber()) {
            fail(path + ": stats counter '" + name
                 + "' is not a number");
        }
    }
    std::printf("ok: %s: workload=%s policy=%s, %zu stats counter(s)\n",
                path.c_str(), doc->str("workload").c_str(),
                doc->str("policy").c_str(), stats->object.size());
}

/** One tenant's serving numbers, from telemetry or a stats JSON. */
struct TenantSlo
{
    std::string name;
    double arrivals = 0.0;
    double started = 0.0;
    double retired = 0.0;
    double violations = 0.0;
    double sloCycles = 0.0;
    bool reserved = false;
    double p50 = 0.0;
    double p99 = 0.0;
    double max = 0.0;

    double
    attainment() const
    {
        return retired == 0.0 ? 1.0 : 1.0 - violations / retired;
    }
};

void
printSloTable(const std::vector<TenantSlo>& tenants)
{
    std::printf("  %-12s %-11s %-9s %-9s %-9s %-9s %-9s %-9s %-9s %s\n",
                "tenant", "qos", "arrivals", "retired", "viols", "p50",
                "p99", "max", "slo", "attain");
    for (const TenantSlo& t : tenants) {
        std::printf("  %-12s %-11s %-9.0f %-9.0f %-9.0f %-9.0f %-9.0f "
                    "%-9.0f %-9.0f %6.2f%%%s\n",
                    t.name.c_str(), t.reserved ? "reserved" : "best-effort",
                    t.arrivals, t.retired, t.violations, t.p50, t.p99,
                    t.max, t.sloCycles, 100.0 * t.attainment(),
                    t.p99 > t.sloCycles && t.sloCycles > 0.0
                        ? "  <-- p99 over SLO"
                        : "");
    }
}

/** Tenant names present in a key set, via "tenant.<name>.arrivals". */
std::vector<std::string>
tenantNames(const json::Value& object)
{
    std::vector<std::string> names;
    const std::string prefix = "tenant.";
    const std::string suffix = ".arrivals";
    for (const auto& [key, value] : object.object) {
        (void)value;
        if (key.rfind(prefix, 0) != 0 || key.size() <= prefix.size()
            || key.compare(key.size() - suffix.size(), suffix.size(),
                           suffix)
                != 0) {
            continue;
        }
        names.push_back(key.substr(
            prefix.size(), key.size() - prefix.size() - suffix.size()));
    }
    std::sort(names.begin(), names.end());
    return names;
}

void
cmdSlo(const Run& run)
{
    if (run.epochs.empty()) {
        fail(run.prefix + ".metrics.jsonl: no epoch samples");
    }
    const json::Value& last = *run.epochs.back();
    const json::Value* metrics = last.get("metrics");
    if (metrics == nullptr || !metrics->isObject()) {
        fail(run.prefix + ".metrics.jsonl: missing 'metrics' object");
    }
    const std::vector<std::string> names = tenantNames(*metrics);
    if (names.empty()) {
        fail(run.prefix + ": no serving tenants in this run (tenant.* "
                          "metrics absent); produce one with ndpext_sim "
                          "--tenant=... --telemetry=PREFIX");
    }

    std::vector<TenantSlo> tenants;
    const json::Value* hists = last.get("histograms");
    for (const std::string& name : names) {
        TenantSlo t;
        t.name = name;
        const std::string base = "tenant." + name;
        t.arrivals = metrics->num(base + ".arrivals");
        t.started = metrics->num(base + ".started");
        t.retired = metrics->num(base + ".retired");
        t.violations = metrics->num(base + ".sloViolations");
        t.sloCycles = metrics->num(base + ".sloCycles");
        t.reserved = metrics->num(base + ".reserved") != 0.0;
        if (hists != nullptr) {
            const json::Value* lat = hists->get(base + ".latency");
            if (lat != nullptr) {
                t.p50 = lat->num("p50");
                t.p99 = lat->num("p99");
                t.max = lat->num("max");
            }
        }
        tenants.push_back(std::move(t));
    }

    std::printf("serving SLO view: %s (final sample, %zu tenant(s))\n\n",
                run.prefix.c_str(), tenants.size());
    printSloTable(tenants);

    // Per-epoch attainment trend: the metrics are cumulative, so each
    // interval's attainment comes from adjacent-sample deltas.
    std::printf("\nper-epoch SLO attainment (interval, %%):\n");
    std::printf("  %-6s", "epoch");
    for (const std::string& name : names) {
        std::printf(" %12s", name.c_str());
    }
    std::printf("\n");
    std::vector<double> prev_retired(names.size(), 0.0);
    std::vector<double> prev_viols(names.size(), 0.0);
    for (const auto& line : run.epochs) {
        const json::Value* m = line->get("metrics");
        if (m == nullptr) {
            continue;
        }
        std::printf("  %-6llu",
                    static_cast<unsigned long long>(line->num("epoch")));
        for (std::size_t i = 0; i < names.size(); ++i) {
            const std::string base = "tenant." + names[i];
            const double retired = m->num(base + ".retired");
            const double viols = m->num(base + ".sloViolations");
            const double dr = retired - prev_retired[i];
            const double dv = viols - prev_viols[i];
            if (dr <= 0.0) {
                // Nothing retired this interval (tenant not yet arrived,
                // already departed, or simply idle): attainment is
                // undefined, never NaN/inf.
                std::printf(" %12s", "n/a");
            } else {
                std::printf(" %11.2f%%", 100.0 * (1.0 - dv / dr));
            }
            prev_retired[i] = retired;
            prev_viols[i] = viols;
        }
        std::printf("\n");
    }
}

/** The slo table from a `ndpext_sim --stats-json` output. */
void
cmdSloStatsJson(const std::string& path)
{
    if (std::ifstream(path + ".inprogress").good()) {
        fail(path + ".inprogress exists: the producing run did not "
                    "finish; its stats describe an unfinished run");
    }
    std::string text;
    std::string error;
    if (!readFile(path, text, &error)) {
        fail(error);
    }
    const json::ValuePtr doc = json::parse(text, &error);
    if (doc == nullptr) {
        fail(path + ": " + error);
    }
    const json::Value* stats =
        doc->isObject() ? doc->get("stats") : nullptr;
    if (stats == nullptr || !stats->isObject()) {
        fail(path + ": missing 'stats' object");
    }
    if (stats->num("serving.tenants") <= 0.0) {
        fail(path + ": no serving tenants in this run (serving.tenants "
                    "is absent); produce one with ndpext_sim "
                    "--tenant=... --stats-json=FILE");
    }
    std::vector<TenantSlo> tenants;
    for (const std::string& name : tenantNames(*stats)) {
        TenantSlo t;
        t.name = name;
        const std::string base = "tenant." + name;
        t.arrivals = stats->num(base + ".arrivals");
        t.started = stats->num(base + ".started");
        t.retired = stats->num(base + ".retired");
        t.violations = stats->num(base + ".sloViolations");
        t.sloCycles = stats->num(base + ".sloCycles");
        t.reserved = stats->num(base + ".reserved") != 0.0;
        t.p50 = stats->num(base + ".latencyP50");
        t.p99 = stats->num(base + ".latencyP99");
        t.max = stats->num(base + ".latencyMax");
        tenants.push_back(std::move(t));
    }
    std::printf("serving SLO view: %s (%zu tenant(s))\n\n", path.c_str(),
                tenants.size());
    printSloTable(tenants);
}

/**
 * Tail-latency forensics: the full causal span path of every retained
 * exemplar, verified cycle-exact, plus per-tenant p99 blame.
 */
void
cmdTrace(const Run& run)
{
    if (run.exemplars.empty()) {
        fail(run.prefix + ": no request exemplars "
             + "(produce them with ndpext_sim --tenant=... "
               "--telemetry=PREFIX --trace-requests)");
    }
    checkExemplarSchema(run);

    std::map<std::string, std::vector<const json::Value*>> by_tenant;
    for (const auto& ex : run.exemplars) {
        by_tenant[ex->str("tenant")].push_back(ex.get());
    }
    std::printf("request-trace view: %s (%zu exemplar(s), %zu "
                "tenant(s))\n",
                run.prefix.c_str(), run.exemplars.size(),
                by_tenant.size());

    std::vector<std::pair<std::string, std::string>> blame;
    for (const auto& [tenant, exemplars] : by_tenant) {
        std::size_t slow_n = 0;
        for (const json::Value* ex : exemplars) {
            slow_n += ex->str("kind") == "slow" ? 1 : 0;
        }
        std::printf("\ntenant %s (%s, slo=%.0f): %zu slow + %zu uniform "
                    "exemplar(s)\n",
                    tenant.c_str(), exemplars.front()->str("qos").c_str(),
                    exemplars.front()->num("sloCycles"), slow_n,
                    exemplars.size() - slow_n);
        std::printf("  %-5s %-5s %-4s %-10s %-9s", "epoch", "flow",
                    "core", "arrival", "latency");
        for (const char* stage : kExemplarStages) {
            std::printf(" %9s", stage);
        }
        std::printf(" %s\n", "slo");
        double stage_sum[std::size(kExemplarStages)] = {};
        for (const json::Value* ex : exemplars) {
            if (ex->str("kind") != "slow") {
                continue; // uniform exemplars feed tooling, not the table
            }
            std::printf("  %-5.0f %-5.0f %-4.0f %-10.0f %-9.0f",
                        ex->num("epoch"), ex->num("flow"), ex->num("core"),
                        ex->num("arrival"), ex->num("latency"));
            const json::Value* stages = ex->get("stages");
            for (std::size_t s = 0; s < std::size(kExemplarStages); ++s) {
                const double v = stages->num(kExemplarStages[s]);
                stage_sum[s] += v;
                std::printf(" %9.0f", v);
            }
            std::printf(" %s\n",
                        ex->num("violation") != 0.0 ? "VIOL" : "ok");
        }
        // Blame: which stage dominates the slowest requests this run
        // retained -- the first place to look for this tenant's tail.
        double total = 0.0;
        std::size_t dom = 0;
        for (std::size_t s = 0; s < std::size(kExemplarStages); ++s) {
            total += stage_sum[s];
            if (stage_sum[s] > stage_sum[dom]) {
                dom = s;
            }
        }
        std::size_t second = dom == 0 ? 1 : 0;
        for (std::size_t s = 0; s < std::size(kExemplarStages); ++s) {
            if (s != dom && stage_sum[s] > stage_sum[second]) {
                second = s;
            }
        }
        if (total > 0.0) {
            std::printf("  blame: %s (%.1f%% of slow-exemplar cycles), "
                        "then %s (%.1f%%)\n",
                        kExemplarStages[dom],
                        100.0 * stage_sum[dom] / total,
                        kExemplarStages[second],
                        100.0 * stage_sum[second] / total);
            blame.emplace_back(tenant, kExemplarStages[dom]);
        }
    }
    std::printf("\np99-dominant stage per tenant:");
    for (const auto& [tenant, stage] : blame) {
        std::printf(" %s:%s", tenant.c_str(), stage.c_str());
    }
    std::printf("\n");
}

/** Parse as many whole JSONL lines as possible (a live file may end in
 *  a partially-appended line; everything before it is still valid). */
std::vector<json::ValuePtr>
parseLinesLenient(const std::string& text)
{
    std::vector<json::ValuePtr> lines;
    std::size_t pos = 0;
    while (pos < text.size()) {
        const std::size_t nl = text.find('\n', pos);
        if (nl == std::string::npos) {
            break; // trailing partial line: ignore
        }
        std::string err;
        json::ValuePtr v = json::parse(text.substr(pos, nl - pos), &err);
        if (v == nullptr) {
            break;
        }
        lines.push_back(std::move(v));
        pos = nl + 1;
    }
    return lines;
}

/**
 * Live view of a (possibly still running) simulation. Strictly
 * read-only over advisory artifacts -- the heartbeat file the run
 * atomically rewrites at epoch barriers and any flushed .metrics.part
 * side file -- so watching cannot perturb the run. The .inprogress
 * marker is informational here, never an error.
 */
void
cmdWatch(const std::string& prefix)
{
    const bool in_progress =
        std::ifstream(prefix + ".inprogress").good();
    std::string text;
    json::ValuePtr hb;
    if (readFile(prefix + ".heartbeat.json", text, nullptr)) {
        std::string error;
        hb = json::parse(text, &error);
        if (hb == nullptr) {
            fail(prefix + ".heartbeat.json: " + error);
        }
    }
    std::vector<json::ValuePtr> samples;
    if (readFile(prefix + ".metrics.part", text, nullptr)
        || readFile(prefix + ".metrics.jsonl", text, nullptr)) {
        samples = parseLinesLenient(text);
    }
    if (hb == nullptr && samples.empty()) {
        fail(prefix + ": nothing to watch (no .heartbeat.json, "
                      ".metrics.part or .metrics.jsonl; heartbeats come "
                      "from ndpext_sim --telemetry/--checkpoint runs)");
    }

    std::printf("watch: %s\n", prefix.c_str());
    if (hb != nullptr) {
        const json::Value* done_v = hb->get("done");
        const bool done =
            done_v != nullptr && done_v->isBool() && done_v->boolean;
        std::printf("  status: %s\n",
                    done          ? "finished"
                    : in_progress ? "running (in-progress marker present)"
                                  : "interrupted (no in-progress marker; "
                                    "resume from its newest checkpoint)");
        const double cycles = hb->num("cycles");
        const double horizon = hb->num("horizonCycles");
        const double accesses = hb->num("accesses");
        const double total_hint = hb->num("totalAccessesHint");
        std::printf("  epoch %.0f, cycle %.0f", hb->num("epoch"), cycles);
        if (horizon > 0.0) {
            std::printf(" / horizon %.0f (%.1f%%)", horizon,
                        100.0 * std::min(cycles / horizon, 1.0));
        }
        std::printf(", %.0f accesses", accesses);
        if (total_hint > 0.0) {
            std::printf(" / %.0f (%.1f%%)", total_hint,
                        100.0 * std::min(accesses / total_hint, 1.0));
        }
        std::printf("\n");
        const double elapsed_ms =
            hb->num("wallUnixMs") - hb->num("startUnixMs");
        const double progressed = cycles - hb->num("startCycles");
        if (elapsed_ms > 0.0 && progressed > 0.0) {
            std::printf("  wall: %.1fs this attempt, %.2f Mcycles/s",
                        elapsed_ms / 1e3,
                        progressed / elapsed_ms / 1e3);
            if (!done && horizon > cycles) {
                std::printf(", ETA ~%.1fs to horizon",
                            (horizon - cycles) * elapsed_ms / progressed
                                / 1e3);
            }
            std::printf("\n");
        }
        const json::Value* tenants = hb->get("tenants");
        if (tenants != nullptr && tenants->isArray()
            && !tenants->array.empty()) {
            std::printf("  %-12s %-11s %-9s %-9s %-9s %s\n", "tenant",
                        "qos", "slo", "retired", "viols", "attain");
            for (const auto& t : tenants->array) {
                const double retired = t->num("retired");
                const double viols = t->num("violations");
                std::printf("  %-12s %-11s %-9.0f %-9.0f %-9.0f",
                            t->str("name").c_str(),
                            t->num("reserved") != 0.0 ? "reserved"
                                                      : "best-effort",
                            t->num("sloCycles"), retired, viols);
                if (retired <= 0.0) {
                    std::printf(" %6s\n", "n/a");
                } else {
                    std::printf(" %5.2f%%%s\n",
                                100.0 * (1.0 - viols / retired),
                                viols > 0.0 ? "  <-- violations burning"
                                            : "");
                }
            }
        }
    } else {
        std::printf("  status: %s (no heartbeat file)\n",
                    in_progress ? "running (in-progress marker present)"
                                : "finished");
    }

    // Interval view from flushed metric samples: the SLO burn rate of
    // the most recent completed epoch.
    if (samples.size() >= 2) {
        const json::Value* prev =
            samples[samples.size() - 2]->get("metrics");
        const json::Value* last = samples.back()->get("metrics");
        if (prev != nullptr && last != nullptr) {
            const std::vector<std::string> names = tenantNames(*last);
            if (!names.empty()) {
                std::printf("  last flushed epoch (%.0f) attainment:",
                            samples.back()->num("epoch"));
                for (const std::string& name : names) {
                    const std::string base = "tenant." + name;
                    const double dr = last->num(base + ".retired")
                        - prev->num(base + ".retired");
                    const double dv = last->num(base + ".sloViolations")
                        - prev->num(base + ".sloViolations");
                    if (dr <= 0.0) {
                        std::printf(" %s:n/a", name.c_str());
                    } else {
                        std::printf(" %s:%.2f%%", name.c_str(),
                                    100.0 * (1.0 - dv / dr));
                    }
                }
                std::printf("\n");
            }
        }
    }
    std::printf("  %zu flushed metric sample(s) on disk\n",
                samples.size());
}

void
cmdCheck(const Run& run)
{
    checkMetricsSchema(run);
    checkDecisionsSchema(run);
    checkTraceSchema(run);
    checkExemplarSchema(run);
    // Every exemplar's flow id must be linked in the trace: its span
    // tree carries matching s/t/f events (checked pairwise above).
    if (!run.exemplars.empty()) {
        std::map<std::uint64_t, bool> flow_ids;
        for (const auto& ev : run.trace->get("traceEvents")->array) {
            if (ev->str("ph") == "s" && ev->get("id") != nullptr) {
                flow_ids[static_cast<std::uint64_t>(
                    ev->get("id")->number)] = true;
            }
        }
        for (std::size_t i = 0; i < run.exemplars.size(); ++i) {
            const std::uint64_t fid = static_cast<std::uint64_t>(
                run.exemplars[i]->num("flow"));
            if (flow_ids.find(fid) == flow_ids.end()) {
                fail(run.prefix + ".exemplars.jsonl line "
                     + std::to_string(i + 1) + ": flow id "
                     + std::to_string(fid) + " has no trace flow events");
            }
        }
    }
    // Low sample counts are flagged but do not fail the check: short
    // smoke runs are still valid schema-wise, just statistically thin.
    const std::size_t low = warnLowSamples(stageSamples(run));
    std::printf("ok: %zu epoch sample(s), %zu decision(s), %zu trace "
                "event(s), %zu exemplar(s)%s\n",
                run.epochs.size(), run.decisions.size(),
                run.trace->get("traceEvents")->array.size(),
                run.exemplars.size(),
                low > 0 ? " [low-sample percentiles flagged above]" : "");
}

} // namespace

int
main(int argc, char** argv)
{
    if (argc < 2) {
        usageError("missing command");
    }
    const std::string cmd = argv[1];
    if (cmd == "--help" || cmd == "-h") {
        std::printf("%s", kUsage);
        return 0;
    }
    if (cmd == "watch") {
        if (argc != 3) {
            usageError("watch takes exactly one prefix");
        }
        cmdWatch(argv[2]);
        return 0;
    }
    if (cmd == "summary" || cmd == "check" || cmd == "topdown"
        || cmd == "slo" || cmd == "trace") {
        if (argc != 3) {
            usageError(cmd + " takes exactly one prefix");
        }
        if ((cmd == "check" || cmd == "slo")
            && std::strncmp(argv[2], "--stats-json=", 13) == 0) {
            const std::string path = argv[2] + 13;
            if (path.empty()) {
                usageError(cmd + " --stats-json= needs a file name");
            }
            if (cmd == "check") {
                cmdCheckStatsJson(path);
            } else {
                cmdSloStatsJson(path);
            }
            return 0;
        }
        const Run run = loadRun(argv[2]);
        if (cmd == "summary") {
            cmdSummary(run);
        } else if (cmd == "topdown") {
            cmdTopdown(run);
        } else if (cmd == "slo") {
            cmdSlo(run);
        } else if (cmd == "trace") {
            cmdTrace(run);
        } else {
            cmdCheck(run);
        }
        return 0;
    }
    if (cmd == "diff") {
        bool strict = false;
        double tolerance = 0.0;
        std::vector<std::string> prefixes;
        for (int i = 2; i < argc; ++i) {
            const std::string arg = argv[i];
            if (arg == "--strict") {
                strict = true;
            } else if (arg.rfind("--tolerance=", 0) == 0) {
                char* end = nullptr;
                tolerance = std::strtod(arg.c_str() + 12, &end);
                if (end == nullptr || *end != '\0' || tolerance < 0.0) {
                    usageError("bad --tolerance value '" + arg + "'");
                }
            } else if (!arg.empty() && arg[0] == '-') {
                usageError("unknown diff flag '" + arg + "'");
            } else {
                prefixes.push_back(arg);
            }
        }
        if (prefixes.size() != 2) {
            usageError("diff takes exactly two prefixes");
        }
        const Run a = loadRun(prefixes[0]);
        const Run b = loadRun(prefixes[1]);
        const std::size_t violations = cmdDiff(a, b, tolerance);
        if (strict && violations > 0) {
            std::fprintf(stderr,
                         "ndpext_report: diff --strict: %zu violation(s)\n",
                         violations);
            return 1;
        }
        return 0;
    }
    usageError("unknown command '" + cmd + "'");
}
