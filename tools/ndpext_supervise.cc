/**
 * @file
 * Kill-resume supervisor for ndpext_sim: launches the simulator with
 * checkpointing enabled, detects abnormal exits (crash, OOM kill, power
 * loss of the child), and relaunches from the newest *valid* checkpoint
 * until the run completes or the retry budget is exhausted.
 *
 *     ndpext_supervise [options] --checkpoint=PREFIX -- <sim> <args...>
 *
 * The supervisor appends `--checkpoint=PREFIX` to every attempt and
 * `--resume=<newest valid image>` to retries, so the wrapped command
 * line must not pass those flags itself. Because checkpoint images are
 * written atomically and validated (CRC + config hash) before use, a
 * kill at any instant loses at most the epochs since the last barrier;
 * corrupt images are skipped in favor of the previous valid one.
 *
 * `--kill-after-ms=T` is a chaos-testing hook: the supervisor itself
 * SIGKILLs each attempt T milliseconds after launch. Progress still
 * converges because every attempt resumes from the checkpoint frontier
 * of the previous one. CI uses this to prove crash recovery end to end.
 *
 * The simulator rewrites `PREFIX.heartbeat.json` at every epoch barrier
 * (the supervisor's PREFIX, since it owns the checkpoint flags). The
 * supervisor reads it two ways: on each retry it reports the epoch the
 * run had reached and an ETA extrapolated from the heartbeat's own
 * rate, and with `--hang-after-ms=T` it watches the file's mtime while
 * the child runs -- a child that is alive but has not refreshed its
 * heartbeat for T ms is declared hung, SIGKILLed, and the supervisor
 * fails fast (retrying a deterministic hang would hang again).
 */

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include "sim/checkpoint.h"
#include "telemetry/tiny_json.h"

namespace {

[[noreturn]] void
usage(const char* argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [options] --checkpoint=PREFIX -- <sim> <args...>\n"
        "\n"
        "Supervise a checkpointing ndpext_sim run: launch it, and on\n"
        "abnormal exit resume from the newest valid checkpoint image.\n"
        "\n"
        "options:\n"
        "  --checkpoint=PREFIX   checkpoint path prefix (required);\n"
        "                        appended to the child command line\n"
        "  --checkpoint-every=N  forwarded to the child (default: its\n"
        "                        own default)\n"
        "  --max-retries=N       relaunch budget after failures\n"
        "                        (default 5)\n"
        "  --kill-after-ms=T     chaos hook: SIGKILL each attempt T ms\n"
        "                        after launch (default: off)\n"
        "  --hang-after-ms=T     declare the child hung when its\n"
        "                        PREFIX.heartbeat.json has not been\n"
        "                        refreshed for T ms while the child is\n"
        "                        still alive; SIGKILL it and fail fast\n"
        "                        (default: off)\n",
        argv0);
    std::exit(2);
}

struct Options
{
    std::string checkpoint;
    std::string checkpointEvery;
    std::uint64_t maxRetries = 5;
    std::uint64_t killAfterMs = 0;
    std::uint64_t hangAfterMs = 0;
    std::vector<std::string> child;
};

bool
parseFlag(const std::string& arg, const char* name, std::string* value)
{
    const std::string key = std::string(name) + "=";
    if (arg.compare(0, key.size(), key) != 0) {
        return false;
    }
    *value = arg.substr(key.size());
    return true;
}

std::uint64_t
parseU64(const std::string& value, const char* flag, const char* argv0)
{
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
    if (errno != 0 || end == nullptr || *end != '\0' || value.empty()) {
        std::fprintf(stderr, "%s: bad value for %s: '%s'\n", argv0, flag,
                     value.c_str());
        std::exit(2);
    }
    return v;
}

Options
parseArgs(int argc, char** argv)
{
    Options opt;
    int i = 1;
    for (; i < argc; ++i) {
        const std::string arg = argv[i];
        std::string value;
        if (arg == "--") {
            ++i;
            break;
        } else if (parseFlag(arg, "--checkpoint", &value)) {
            opt.checkpoint = value;
        } else if (parseFlag(arg, "--checkpoint-every", &value)) {
            opt.checkpointEvery = value;
        } else if (parseFlag(arg, "--max-retries", &value)) {
            opt.maxRetries = parseU64(value, "--max-retries", argv[0]);
        } else if (parseFlag(arg, "--kill-after-ms", &value)) {
            opt.killAfterMs = parseU64(value, "--kill-after-ms", argv[0]);
            if (opt.killAfterMs == 0) {
                std::fprintf(stderr, "%s: --kill-after-ms must be > 0\n",
                             argv[0]);
                std::exit(2);
            }
        } else if (parseFlag(arg, "--hang-after-ms", &value)) {
            opt.hangAfterMs = parseU64(value, "--hang-after-ms", argv[0]);
            if (opt.hangAfterMs == 0) {
                std::fprintf(stderr, "%s: --hang-after-ms must be > 0\n",
                             argv[0]);
                std::exit(2);
            }
        } else {
            std::fprintf(stderr, "%s: unknown option '%s'\n", argv[0],
                         arg.c_str());
            usage(argv[0]);
        }
    }
    for (; i < argc; ++i) {
        opt.child.emplace_back(argv[i]);
    }
    if (opt.checkpoint.empty()) {
        std::fprintf(stderr, "%s: --checkpoint=PREFIX is required\n",
                     argv[0]);
        usage(argv[0]);
    }
    if (opt.child.empty()) {
        std::fprintf(stderr, "%s: no child command after '--'\n", argv[0]);
        usage(argv[0]);
    }
    for (const std::string& arg : opt.child) {
        if (arg.compare(0, 13, "--checkpoint=") == 0
            || arg.compare(0, 9, "--resume=") == 0
            || arg.compare(0, 19, "--checkpoint-every=") == 0) {
            std::fprintf(stderr,
                         "%s: the child command must not pass '%s'; the "
                         "supervisor manages checkpoint flags itself\n",
                         argv[0], arg.c_str());
            std::exit(2);
        }
    }
    return opt;
}

/** Heartbeat mtime in milliseconds since the Unix epoch (0 = no file). */
std::uint64_t
heartbeatMtimeMs(const std::string& path)
{
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
        return 0;
    }
    return static_cast<std::uint64_t>(st.st_mtim.tv_sec) * 1000
        + static_cast<std::uint64_t>(st.st_mtim.tv_nsec) / 1000000;
}

/**
 * Report the last heartbeat the previous attempt left behind: how far
 * it got and -- from the heartbeat's own wall-clock/cycle stamps -- a
 * rough ETA to the serving horizon. Best effort: silent when the file
 * is missing or unparseable (the checkpoint is the source of truth).
 */
void
reportLastHeartbeat(const std::string& hb_path)
{
    std::ifstream in(hb_path, std::ios::binary);
    if (!in) {
        return;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const ndpext::json::ValuePtr hb = ndpext::json::parse(ss.str());
    if (hb == nullptr) {
        return;
    }
    std::string eta = "unknown";
    const double cycles = hb->num("cycles");
    const double horizon = hb->num("horizonCycles");
    const double progressed = cycles - hb->num("startCycles");
    const double elapsed_ms =
        hb->num("wallUnixMs") - hb->num("startUnixMs");
    if (horizon > cycles && progressed > 0.0 && elapsed_ms > 0.0) {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "~%.1fs to horizon",
                      (horizon - cycles) * elapsed_ms / progressed / 1e3);
        eta = buf;
    } else if (horizon > 0.0 && cycles >= horizon) {
        eta = "past horizon (draining)";
    }
    std::fprintf(stderr,
                 "ndpext_supervise: last heartbeat: epoch %llu, cycle "
                 "%llu, ETA %s\n",
                 static_cast<unsigned long long>(hb->num("epoch")),
                 static_cast<unsigned long long>(cycles), eta.c_str());
}

struct AttemptResult
{
    int status = 0;
    /** The supervisor killed the child for a stale heartbeat. */
    bool hung = false;
    /** Milliseconds without a heartbeat refresh when declared hung. */
    std::uint64_t staleMs = 0;
};

/**
 * Run one attempt to completion (or until the chaos kill or the
 * hang detector fires). Returns the child's wait status via waitpid
 * semantics, plus whether the hang detector killed it.
 */
AttemptResult
runAttempt(const std::vector<std::string>& args, std::uint64_t kill_after_ms,
           std::uint64_t hang_after_ms, const std::string& hb_path)
{
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& a : args) {
        argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
        std::fprintf(stderr, "ndpext_supervise: fork: %s\n",
                     std::strerror(errno));
        std::exit(1);
    }
    if (pid == 0) {
        ::execvp(argv[0], argv.data());
        std::fprintf(stderr, "ndpext_supervise: exec '%s': %s\n", argv[0],
                     std::strerror(errno));
        ::_exit(127);
    }

    if (kill_after_ms > 0 || hang_after_ms > 0) {
        // Polling mode: chaos kill after a fixed slice, and/or the hang
        // detector watching the heartbeat file's mtime. A completed
        // child is reaped normally.
        const auto start = std::chrono::steady_clock::now();
        const auto kill_deadline =
            start + std::chrono::milliseconds(kill_after_ms);
        // Baseline for "no heartbeat yet": launch time. A pre-existing
        // heartbeat from the previous attempt only counts once the
        // child refreshes it.
        std::uint64_t last_mtime =
            hang_after_ms > 0 ? heartbeatMtimeMs(hb_path) : 0;
        auto last_progress = start;
        for (;;) {
            int status = 0;
            const pid_t done = ::waitpid(pid, &status, WNOHANG);
            if (done == pid) {
                return {status, false, 0};
            }
            const auto now = std::chrono::steady_clock::now();
            if (kill_after_ms > 0 && now >= kill_deadline) {
                ::kill(pid, SIGKILL);
                break;
            }
            if (hang_after_ms > 0) {
                const std::uint64_t mtime = heartbeatMtimeMs(hb_path);
                if (mtime != 0 && mtime != last_mtime) {
                    last_mtime = mtime;
                    last_progress = now;
                }
                const auto stale = now - last_progress;
                if (stale >= std::chrono::milliseconds(hang_after_ms)) {
                    ::kill(pid, SIGKILL);
                    AttemptResult res;
                    res.hung = true;
                    res.staleMs = static_cast<std::uint64_t>(
                        std::chrono::duration_cast<
                            std::chrono::milliseconds>(stale)
                            .count());
                    while (::waitpid(pid, &res.status, 0) < 0
                           && errno == EINTR) {
                    }
                    return res;
                }
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(1));
        }
    }
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0) {
        if (errno != EINTR) {
            std::fprintf(stderr, "ndpext_supervise: waitpid: %s\n",
                         std::strerror(errno));
            std::exit(1);
        }
    }
    return {status, false, 0};
}

std::string
describeStatus(int status)
{
    if (WIFEXITED(status)) {
        return "exit code " + std::to_string(WEXITSTATUS(status));
    }
    if (WIFSIGNALED(status)) {
        return std::string("signal ") + std::to_string(WTERMSIG(status))
            + " (" + strsignal(WTERMSIG(status)) + ")";
    }
    return "wait status " + std::to_string(status);
}

} // namespace

int
main(int argc, char** argv)
{
    const Options opt = parseArgs(argc, argv);

    std::vector<std::string> base = opt.child;
    base.push_back("--checkpoint=" + opt.checkpoint);
    if (!opt.checkpointEvery.empty()) {
        base.push_back("--checkpoint-every=" + opt.checkpointEvery);
    }

    const std::string hb_path = opt.checkpoint + ".heartbeat.json";
    for (std::uint64_t attempt = 0;; ++attempt) {
        std::vector<std::string> args = base;
        std::string resumed_from;
        if (attempt > 0) {
            reportLastHeartbeat(hb_path);
            // Retries resume from the newest image that passes header +
            // CRC validation; a corrupt newest image falls back to the
            // previous one. The child revalidates against its config
            // hash, so a stale image from another run still fails fast.
            std::string path;
            std::string error;
            ndpext::ckpt::CheckpointHeader header;
            if (ndpext::ckpt::findLatestValidCheckpoint(opt.checkpoint,
                                                        &path, &header,
                                                        &error)) {
                args.push_back("--resume=" + path);
                resumed_from = path;
                std::fprintf(stderr,
                             "ndpext_supervise: attempt %llu resumes "
                             "from '%s' (epoch %llu)\n",
                             static_cast<unsigned long long>(attempt + 1),
                             path.c_str(),
                             static_cast<unsigned long long>(header.epoch));
            } else {
                std::fprintf(stderr,
                             "ndpext_supervise: attempt %llu restarts "
                             "from scratch: %s\n",
                             static_cast<unsigned long long>(attempt + 1),
                             error.c_str());
            }
        }

        const AttemptResult res =
            runAttempt(args, opt.killAfterMs, opt.hangAfterMs, hb_path);
        if (res.hung) {
            // A deterministic simulator that stops heartbeating while
            // alive is wedged (deadlock, livelock, or a filesystem that
            // swallowed the heartbeat); a retry would wedge the same
            // way, so surface it instead of burning the budget.
            std::fprintf(
                stderr,
                "ndpext_supervise: attempt %llu hung: child was alive "
                "but '%s' saw no refresh for %llu ms "
                "(--hang-after-ms=%llu); SIGKILLed it. Inspect the "
                "child with ndpext_report watch, raise --hang-after-ms "
                "if epochs legitimately take longer, or resume manually "
                "from the newest checkpoint.\n",
                static_cast<unsigned long long>(attempt + 1),
                hb_path.c_str(),
                static_cast<unsigned long long>(res.staleMs),
                static_cast<unsigned long long>(opt.hangAfterMs));
            reportLastHeartbeat(hb_path);
            return 1;
        }
        const int status = res.status;
        if (WIFEXITED(status) && WEXITSTATUS(status) == 0) {
            if (attempt > 0) {
                std::fprintf(stderr,
                             "ndpext_supervise: run completed after "
                             "%llu retr%s\n",
                             static_cast<unsigned long long>(attempt),
                             attempt == 1 ? "y" : "ies");
            }
            return 0;
        }
        std::fprintf(stderr, "ndpext_supervise: attempt %llu failed: %s\n",
                     static_cast<unsigned long long>(attempt + 1),
                     describeStatus(status).c_str());
        // Usage errors and bad-checkpoint rejections are deterministic:
        // relaunching cannot help, so fail fast instead of burning the
        // retry budget. Crashes and kills are the retryable class.
        if (WIFEXITED(status)
            && (WEXITSTATUS(status) == 2 || WEXITSTATUS(status) == 127)) {
            std::fprintf(stderr,
                         "ndpext_supervise: child failure is not "
                         "retryable, giving up\n");
            return 1;
        }
        if (WIFEXITED(status) && WEXITSTATUS(status) == 1
            && !resumed_from.empty()) {
            // A resume the child rejected (config mismatch) would loop
            // forever picking the same image; surface it instead.
            std::fprintf(stderr,
                         "ndpext_supervise: child rejected resume image "
                         "'%s', giving up\n",
                         resumed_from.c_str());
            return 1;
        }
        if (attempt >= opt.maxRetries) {
            std::fprintf(stderr,
                         "ndpext_supervise: retry budget (%llu) "
                         "exhausted, giving up\n",
                         static_cast<unsigned long long>(opt.maxRetries));
            return 1;
        }
    }
}
