/**
 * ndpext_bench_compare — continuous perf-regression gate.
 *
 * Compares two benchmark result files (a checked-in baseline from
 * bench/baselines/ vs. a fresh run) and exits nonzero when any tracked
 * metric moved beyond its tolerance, in either direction. An unexplained
 * improvement is just as suspicious as a slowdown: both mean the tree no
 * longer produces the numbers the baseline pins.
 *
 *   ndpext_bench_compare [--tolerance=REL] [--advisory=SUBSTR]...
 *                        BASELINE.json CURRENT.json
 *
 * Both benchmark JSON schemas used in this repo are accepted (see
 * bench/bench_util.h for the authoritative schema documentation):
 *
 *   A. StatGroup dumps — bench_util's --stats-json and ndpext_sim's
 *      --stats-json: a top-level object whose numeric members (including
 *      one level of nested objects such as "degraded" and the "stats"
 *      map) are flattened to dotted metric names.
 *   B. google-benchmark --benchmark_out JSON ("context" + "benchmarks"
 *      array): each entry becomes <name>.real_time, <name>.cpu_time,
 *      <name>.iterations plus any user counters.
 *
 * Tolerance model:
 *   - Simulated results (cycles, hits, energy, ...) are deterministic,
 *     so their default tolerance is 0: integral values must match
 *     exactly, non-integral values within 1e-9 relative (JSON text
 *     round-trip slack). --tolerance=REL widens both.
 *   - Wall-clock metrics (real_time, cpu_time, iterations, *_per_second,
 *     *Micros, *PerSec, plus --advisory=SUBSTR matches) are ADVISORY:
 *     printed, never failing. Machine speed is not a property of the tree.
 *   - A baseline metric missing from the current run is a failure; a new
 *     metric only in the current run is advisory (refresh the baseline).
 *
 * Exit status: 0 = within tolerance, 1 = regression, 2 = usage/IO error.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "telemetry/tiny_json.h"

using namespace ndpext;

namespace {

constexpr const char* kUsage =
    "usage: ndpext_bench_compare [--tolerance=REL] [--advisory=SUBSTR]...\n"
    "                            BASELINE.json CURRENT.json\n"
    "  Compares benchmark metrics against a checked-in baseline; exits 1\n"
    "  when any non-advisory metric differs beyond tolerance (default:\n"
    "  exact for integers, 1e-9 relative for floats).\n";

[[noreturn]] void
usageError(const std::string& message)
{
    std::fprintf(stderr, "ndpext_bench_compare: %s\n%s", message.c_str(),
                 kUsage);
    std::exit(2);
}

/** Relative slack for float metrics at the default tolerance: absorbs
 *  JSON text round-trip differences, nothing more. */
constexpr double kFloatSlack = 1e-9;

/** Metric-name substrings that mark host-dependent (advisory) metrics. */
const char* kAdvisoryPatterns[] = {"real_time", "cpu_time", "iterations",
                                   "bytes_per_second", "items_per_second",
                                   "Micros", "PerSec"};

using MetricMap = std::map<std::string, double>;

json::ValuePtr
loadJson(const std::string& path)
{
    std::ifstream in(path);
    if (!in) {
        usageError("cannot open '" + path + "'");
    }
    std::ostringstream body;
    body << in.rdbuf();
    std::string err;
    json::ValuePtr doc = json::parse(body.str(), &err);
    if (doc == nullptr) {
        std::fprintf(stderr, "ndpext_bench_compare: %s: %s\n", path.c_str(),
                     err.c_str());
        std::exit(2);
    }
    return doc;
}

/** Schema A: flatten numeric members, one nesting level deep. */
void
flattenStats(const json::Value& obj, const std::string& prefix,
             int depth, MetricMap& out)
{
    for (const auto& [name, value] : obj.object) {
        const std::string key = prefix.empty() ? name : prefix + "." + name;
        if (value->isNumber()) {
            out[key] = value->number;
        } else if (value->isObject() && depth < 2) {
            flattenStats(*value, key, depth + 1, out);
        }
    }
}

/** Schema B: google-benchmark's "benchmarks" array. */
void
flattenBenchmarks(const json::Value& benchmarks, MetricMap& out)
{
    for (const auto& entry : benchmarks.array) {
        if (entry == nullptr || !entry->isObject()) {
            continue;
        }
        const std::string name = entry->str("name");
        if (name.empty()) {
            continue;
        }
        for (const auto& [field, value] : entry->object) {
            // Skip bookkeeping fields that are not measurements.
            if (field == "name" || field == "run_name"
                || field == "family_index" || field == "repetition_index"
                || field == "per_family_instance_index"
                || field == "threads" || field == "repetitions") {
                continue;
            }
            if (value->isNumber()) {
                out[name + "." + field] = value->number;
            }
        }
    }
}

MetricMap
loadMetrics(const std::string& path)
{
    const json::ValuePtr doc = loadJson(path);
    if (!doc->isObject()) {
        usageError(path + ": expected a top-level JSON object");
    }
    MetricMap out;
    const json::Value* benchmarks = doc->get("benchmarks");
    if (benchmarks != nullptr && benchmarks->isArray()) {
        flattenBenchmarks(*benchmarks, out);
    } else {
        flattenStats(*doc, "", 0, out);
    }
    if (out.empty()) {
        usageError(path + ": no numeric metrics found (neither schema)");
    }
    return out;
}

bool
isAdvisory(const std::string& name,
           const std::vector<std::string>& extra_patterns)
{
    for (const char* pattern : kAdvisoryPatterns) {
        if (name.find(pattern) != std::string::npos) {
            return true;
        }
    }
    for (const std::string& pattern : extra_patterns) {
        if (name.find(pattern) != std::string::npos) {
            return true;
        }
    }
    return false;
}

bool
isIntegral(double v)
{
    return std::isfinite(v) && v == std::floor(v)
           && std::abs(v) < 9.007199254740992e15; // 2^53
}

} // namespace

int
main(int argc, char** argv)
{
    double tolerance = -1.0; // <0 = default model (exact / kFloatSlack)
    std::vector<std::string> advisory_patterns;
    std::vector<std::string> paths;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--help" || arg == "-h") {
            std::printf("%s", kUsage);
            return 0;
        }
        if (arg.rfind("--tolerance=", 0) == 0) {
            char* end = nullptr;
            tolerance = std::strtod(arg.c_str() + 12, &end);
            if (end == nullptr || *end != '\0' || tolerance < 0.0) {
                usageError("bad --tolerance value '" + arg + "'");
            }
        } else if (arg.rfind("--advisory=", 0) == 0) {
            advisory_patterns.push_back(arg.substr(11));
        } else if (!arg.empty() && arg[0] == '-') {
            usageError("unknown flag '" + arg + "'");
        } else {
            paths.push_back(arg);
        }
    }
    if (paths.size() != 2) {
        usageError("expected exactly two files (baseline, current)");
    }

    const MetricMap baseline = loadMetrics(paths[0]);
    const MetricMap current = loadMetrics(paths[1]);

    std::printf("bench compare: %s (baseline) vs %s (current)\n",
                paths[0].c_str(), paths[1].c_str());
    std::printf("  %zu baseline metric(s), %zu current metric(s)\n\n",
                baseline.size(), current.size());

    std::size_t regressions = 0;
    std::size_t advisory_changes = 0;
    std::size_t unchanged = 0;
    std::printf("  %-44s %-16s %-16s %-12s %s\n", "metric", "baseline",
                "current", "rel-delta", "verdict");
    for (const auto& [name, base] : baseline) {
        const auto it = current.find(name);
        const bool advisory = isAdvisory(name, advisory_patterns);
        if (it == current.end()) {
            std::printf("  %-44s %-16.6g %-16s %-12s %s\n", name.c_str(),
                        base, "-", "-",
                        advisory ? "ADVISORY (missing)" : "FAIL (missing)");
            if (!advisory) {
                ++regressions;
            }
            continue;
        }
        const double cur = it->second;
        const double rel = base == 0.0
                               ? (cur == 0.0 ? 0.0 : 1.0)
                               : std::abs(cur - base) / std::abs(base);
        bool over;
        if (tolerance >= 0.0) {
            over = rel > tolerance;
        } else if (isIntegral(base) && isIntegral(cur)) {
            over = base != cur;
        } else {
            over = rel > kFloatSlack;
        }
        if (!over) {
            ++unchanged;
            continue; // keep the table to actual deltas
        }
        const char* verdict = advisory ? "advisory" : "FAIL";
        std::printf("  %-44s %-16.6g %-16.6g %-12.3e %s\n", name.c_str(),
                    base, cur, rel, verdict);
        if (advisory) {
            ++advisory_changes;
        } else {
            ++regressions;
        }
    }
    for (const auto& [name, cur] : current) {
        if (baseline.find(name) == baseline.end()) {
            std::printf("  %-44s %-16s %-16.6g %-12s %s\n", name.c_str(),
                        "-", cur, "-", "advisory (new; refresh baseline)");
            ++advisory_changes;
        }
    }

    std::printf("\n%zu metric(s) unchanged, %zu advisory change(s), "
                "%zu regression(s)\n",
                unchanged, advisory_changes, regressions);
    if (regressions > 0) {
        std::fprintf(stderr,
                     "ndpext_bench_compare: %zu metric(s) regressed vs %s; "
                     "if intentional, refresh the baseline (see "
                     "EXPERIMENTS.md, 'Performance tracking')\n",
                     regressions, paths[0].c_str());
        return 1;
    }
    std::printf("ok: current results match the baseline\n");
    return 0;
}
